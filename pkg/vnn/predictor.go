// The case-study predictor, public. The paper's running example — an
// ANN-based highway motion predictor with a Gaussian-mixture head — used
// to live in internal/core, which meant every example demonstrating the
// methodology had to import internal packages. The construction,
// decoding and safety-query surface now lives here; internal/core
// delegates, so the certification pipeline is unchanged.

package vnn

import (
	"context"
	"fmt"
	"math/rand"

	"repro/internal/gmm"
	"repro/internal/highway"
	"repro/internal/nn"
	"repro/internal/train"
)

// Predictor wraps a trained network with its mixture-head decoding.
type Predictor struct {
	Net *Network
	K   int // mixture components
}

// NewPredictor constructs an untrained predictor network in the paper's
// I<depth>×<width> family: 84 inputs, `depth` hidden ReLU layers of
// `width` neurons, and a linear gmm head with k components.
func NewPredictor(depth, width, k int, seed int64) *Predictor {
	if depth < 1 || width < 1 || k < 1 {
		panic(fmt.Sprintf("vnn: bad predictor shape depth=%d width=%d k=%d", depth, width, k))
	}
	hidden := make([]int, depth)
	for i := range hidden {
		hidden[i] = width
	}
	rng := rand.New(rand.NewSource(seed))
	outNames := make([]string, k*gmm.RawPerComponent)
	for i := 0; i < k; i++ {
		base := i * gmm.RawPerComponent
		outNames[base+gmm.RawLogit] = fmt.Sprintf("c%d.logit", i)
		outNames[base+gmm.RawMuLat] = fmt.Sprintf("c%d.mu_lat", i)
		outNames[base+gmm.RawMuLong] = fmt.Sprintf("c%d.mu_long", i)
		outNames[base+gmm.RawLogSigLat] = fmt.Sprintf("c%d.logsig_lat", i)
		outNames[base+gmm.RawLogSigLong] = fmt.Sprintf("c%d.logsig_long", i)
	}
	net := nn.New(nn.Config{
		Name:        fmt.Sprintf("predictor-I%dx%d", depth, width),
		InputDim:    highway.FeatureDim,
		Hidden:      hidden,
		OutputDim:   k * gmm.RawPerComponent,
		HiddenAct:   nn.ReLU,
		OutputAct:   nn.Identity,
		InputNames:  highway.FeatureNames(),
		OutputNames: outNames,
	}, rng)
	train.InitMDNHead(net, k, 1.0, -1, rng)
	return &Predictor{Net: net, K: k}
}

// Predict decodes the network output at x into an action distribution.
func (p *Predictor) Predict(x []float64) Mixture {
	return gmm.Decode(p.Net.Forward(x))
}

// SuggestAction returns the dominant-component action suggestion
// (lateral velocity, longitudinal acceleration).
func (p *Predictor) SuggestAction(x []float64) (latVel, longAcc float64) {
	c := p.Predict(x).Dominant()
	return c.Mean[gmm.LatVel], c.Mean[gmm.LongAcc]
}

// MuLatOutputs lists the raw-output indices of all component lateral-
// velocity means — the outputs the verifier bounds.
func (p *Predictor) MuLatOutputs() []int { return MuLatOutputs(p.K) }

// MuLongOutputs lists the raw-output indices of all component
// longitudinal-acceleration means.
func (p *Predictor) MuLongOutputs() []int { return MuLongOutputs(p.K) }

// VerifySafety bounds the maximum lateral-velocity component mean over the
// left-occupied region (the Table II "maximum lateral velocity" column).
// Bounding every component mean soundly bounds the mixture mean. The
// network is compiled for this one query; callers running several queries
// should Compile once themselves.
func (p *Predictor) VerifySafety(ctx context.Context, opts Options) (*Result, error) {
	cn, err := Compile(ctx, p.Net, LeftOccupiedRegion(), opts)
	if err != nil {
		return nil, err
	}
	return VerifyOne(ctx, cn, MaxOverOutputs(p.MuLatOutputs()...))
}

// ProveSafetyBound proves that no lateral-velocity component mean exceeds
// the threshold over the left-occupied region (Table II's last row, with
// threshold 3 m/s in the paper). It returns the aggregate verdict and the
// per-component results, all answered on one compiled encoding.
func (p *Predictor) ProveSafetyBound(ctx context.Context, threshold float64, opts Options) (Outcome, []*Result, error) {
	cn, err := Compile(ctx, p.Net, LeftOccupiedRegion(), opts)
	if err != nil {
		return 0, nil, err
	}
	props := make([]Property, 0, p.K)
	for _, out := range p.MuLatOutputs() {
		props = append(props, AtMost(out, threshold))
	}
	results, err := Verify(ctx, cn, props...)
	if err != nil {
		return 0, nil, err
	}
	return Worst(results), results, nil
}

// VerifyFrontSafety bounds the maximum longitudinal-acceleration component
// mean over the close-front region (the symmetric longitudinal property).
// A sound bound on every component mean bounds the mixture's suggested
// acceleration.
func (p *Predictor) VerifyFrontSafety(ctx context.Context, opts Options) (*Result, error) {
	cn, err := Compile(ctx, p.Net, FrontCloseRegion(), opts)
	if err != nil {
		return nil, err
	}
	return VerifyOne(ctx, cn, MaxOverOutputs(p.MuLongOutputs()...))
}

// ProveFrontSafetyBound proves the acceleration suggestion stays at or
// below threshold (m/s²) whenever a vehicle is close ahead.
func (p *Predictor) ProveFrontSafetyBound(ctx context.Context, threshold float64, opts Options) (Outcome, []*Result, error) {
	cn, err := Compile(ctx, p.Net, FrontCloseRegion(), opts)
	if err != nil {
		return 0, nil, err
	}
	props := make([]Property, 0, p.K)
	for _, out := range p.MuLongOutputs() {
		props = append(props, AtMost(out, threshold))
	}
	results, err := Verify(ctx, cn, props...)
	if err != nil {
		return 0, nil, err
	}
	return Worst(results), results, nil
}

// SafetyRules returns the data-validation rules of the case study
// (Sec. II (C)): structural sanity plus the property that no training
// sample exhibits a left move with the left slot occupied beyond latTol.
// The same values feed pre-training sanitization, DataValidation
// analyses, and requests served over the wire.
func SafetyRules(latTol float64) []DataRule {
	return []DataRule{
		DimensionRule(highway.FeatureDim, 2),
		FiniteRule(),
		RangeRule(0, 1),
		NewDataRule("no-left-move-when-left-occupied",
			"no sample commands positive lateral velocity while the left slot is occupied",
			func(s Sample) string {
				if highway.LeftOccupiedInFeatures(s.X) && s.Y[0] > latTol {
					return fmt.Sprintf("lat_vel %.3f with left occupied", s.Y[0])
				}
				return ""
			}),
	}
}
