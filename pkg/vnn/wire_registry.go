// Wire forms of the verified-rollout plane: GateSpec configures the
// admission gate a model version must pass before taking traffic, and
// ModelVersionJSON/TransitionJSON document a registered version and its
// lifecycle. The gate is deliberately thin glue over the existing
// portfolio — its analyses are plain AnalysisSpec values run through
// Analyze, and Evaluate turns their typed findings into a pass/fail
// decision against declared thresholds. The vnnd registry (pkg/vnnregistry)
// persists and serves exactly these shapes.

package vnn

import (
	"fmt"
	"math"
)

// GateSpec is the wire form of an admission gate: the portfolio batch a
// submitted model version must run, plus the thresholds its findings must
// clear. A version whose gate passes becomes admitted (eligible for
// canary/promotion); a version whose gate fails is rejected and never
// routes traffic.
//
//	{"analyses":[{"kind":"verify","properties":[...]},
//	             {"kind":"monitor_audit","data":[[...]],"gamma":2}],
//	 "max_flag_rate":0.05, "max_bound_drift":0.1}
type GateSpec struct {
	// Analyses is the portfolio batch the gate runs (via vnn.Analyze) on
	// the submitted version's compilation.
	Analyses []AnalysisSpec `json:"analyses"`
	// RequireProved, when unset or true, rejects verification findings
	// (and quant-sweep baselines) that are merely inconclusive; violated
	// properties always reject regardless.
	RequireProved *bool `json:"require_proved,omitempty"`
	// MaxFlagRate bounds a monitor_audit finding's flagged fraction
	// (ε in the paper's abstention argument); unset leaves audits
	// informational.
	MaxFlagRate *float64 `json:"max_flag_rate,omitempty"`
	// MaxBoundDrift and MaxValueDrift bound each quant_sweep point's
	// proven-bound / witnessed-value delta against the float baseline;
	// unset leaves drift informational. Points with no comparable pair
	// (NaN delta) are not rejected by these thresholds.
	MaxBoundDrift *float64 `json:"max_bound_drift,omitempty"`
	MaxValueDrift *float64 `json:"max_value_drift,omitempty"`
	// MinNeuronCoverage is the lower bound a coverage finding's neuron
	// coverage must reach; unset leaves coverage informational.
	MinNeuronCoverage *float64 `json:"min_neuron_coverage,omitempty"`
	// TimeoutMS bounds the whole gate run including compiles; 0 falls
	// back to the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// requireProved reports whether inconclusive formal verdicts reject
// (the default).
func (g *GateSpec) requireProved() bool {
	return g.RequireProved == nil || *g.RequireProved
}

// Validate checks the gate's shape: at least one analysis, each analysis
// spec well-formed, thresholds in their domains. Network-dependent checks
// are ValidateFor's job.
func (g *GateSpec) Validate() error {
	if len(g.Analyses) == 0 {
		return fmt.Errorf("vnn: gate needs at least one analysis")
	}
	for i := range g.Analyses {
		if _, err := g.Analyses[i].Analysis(); err != nil {
			return fmt.Errorf("vnn: gate analysis %d: %w", i, err)
		}
	}
	if g.MaxFlagRate != nil && (*g.MaxFlagRate < 0 || *g.MaxFlagRate > 1 || math.IsNaN(*g.MaxFlagRate)) {
		return fmt.Errorf("vnn: gate max_flag_rate %v outside [0, 1]", *g.MaxFlagRate)
	}
	if g.MinNeuronCoverage != nil && (*g.MinNeuronCoverage < 0 || *g.MinNeuronCoverage > 1 || math.IsNaN(*g.MinNeuronCoverage)) {
		return fmt.Errorf("vnn: gate min_neuron_coverage %v outside [0, 1]", *g.MinNeuronCoverage)
	}
	if g.MaxBoundDrift != nil && (*g.MaxBoundDrift < 0 || math.IsNaN(*g.MaxBoundDrift)) {
		return fmt.Errorf("vnn: gate max_bound_drift %v is negative", *g.MaxBoundDrift)
	}
	if g.MaxValueDrift != nil && (*g.MaxValueDrift < 0 || math.IsNaN(*g.MaxValueDrift)) {
		return fmt.Errorf("vnn: gate max_value_drift %v is negative", *g.MaxValueDrift)
	}
	if g.TimeoutMS < 0 {
		return fmt.Errorf("vnn: gate timeout_ms %d is negative", g.TimeoutMS)
	}
	return nil
}

// ValidateFor checks the gate's analyses against the concrete network they
// will gate — Validate plus every AnalysisSpec.ValidateFor.
func (g *GateSpec) ValidateFor(net *Network) error {
	if err := g.Validate(); err != nil {
		return err
	}
	for i := range g.Analyses {
		if err := g.Analyses[i].ValidateFor(net); err != nil {
			return fmt.Errorf("vnn: gate analysis %d: %w", i, err)
		}
	}
	return nil
}

// GateCheckJSON is one analysis's verdict within a gate decision.
type GateCheckJSON struct {
	// Analysis is the index of the analysis in GateSpec.Analyses.
	Analysis int `json:"analysis"`
	// Kind echoes the analysis kind.
	Kind string `json:"kind"`
	// Pass reports whether this analysis cleared its thresholds.
	Pass bool `json:"pass"`
	// Reason explains a failure (empty on pass, except informational
	// notes).
	Reason string `json:"reason,omitempty"`
}

// GateDecisionJSON is the wire form of a completed gate evaluation: the
// overall verdict plus one check per analysis.
type GateDecisionJSON struct {
	Pass   bool            `json:"pass"`
	Checks []GateCheckJSON `json:"checks"`
}

// FailReason returns the first failing check's reason, or "" when the
// decision passed.
func (d *GateDecisionJSON) FailReason() string {
	for _, c := range d.Checks {
		if !c.Pass {
			return fmt.Sprintf("analysis %d (%s): %s", c.Analysis, c.Kind, c.Reason)
		}
	}
	return ""
}

// Evaluate scores a gate run's findings (one per gate analysis, in order)
// against the gate's thresholds. It is pure decision logic: the analyses
// have already run; Evaluate only reads their typed findings.
//
// Per-kind rules:
//   - verify: any Violated property rejects; Inconclusive rejects unless
//     require_proved is false.
//   - quant_sweep: the float baseline is held to the verify rule; each
//     measured point rejects on a Violated verdict or on bound/value
//     drift above max_bound_drift / max_value_drift (NaN deltas —
//     no comparable pair — are not rejected).
//   - monitor_audit: the flagged fraction must be ≤ max_flag_rate when
//     set; otherwise informational.
//   - coverage: neuron coverage must be ≥ min_neuron_coverage when set.
//   - data_validation: the rule report must be valid.
//   - traceability, falsify: informational (a falsification witness shows
//     up as a Violated verdict in the paired verify analysis).
func (g *GateSpec) Evaluate(findings []*Finding) GateDecisionJSON {
	d := GateDecisionJSON{Pass: true, Checks: make([]GateCheckJSON, 0, len(findings))}
	for i, f := range findings {
		c := GateCheckJSON{Analysis: i, Kind: f.Kind, Pass: true}
		switch {
		case f.Verification != nil:
			c.Pass, c.Reason = g.checkFormal(f.Verification)
		case f.QuantSweep != nil:
			c.Pass, c.Reason = g.checkQuantSweep(f.QuantSweep)
		case f.Monitor != nil:
			if g.MaxFlagRate != nil && f.Monitor.FlaggedFraction > *g.MaxFlagRate {
				c.Pass = false
				c.Reason = fmt.Sprintf("flagged fraction %.4f exceeds max_flag_rate %.4f",
					f.Monitor.FlaggedFraction, *g.MaxFlagRate)
			}
		case f.Coverage != nil:
			if g.MinNeuronCoverage != nil {
				if nc := f.Coverage.Suite.NeuronCoverage(); nc < *g.MinNeuronCoverage {
					c.Pass = false
					c.Reason = fmt.Sprintf("neuron coverage %.4f below min_neuron_coverage %.4f",
						nc, *g.MinNeuronCoverage)
				}
			}
		case f.DataValidation != nil:
			if rep := f.DataValidation.Report; !rep.Valid() {
				c.Pass = false
				c.Reason = fmt.Sprintf("%d of %d samples violate validity rules",
					len(rep.Violations), rep.Samples)
			}
		}
		if !c.Pass {
			d.Pass = false
		}
		d.Checks = append(d.Checks, c)
	}
	return d
}

// checkFormal applies the gate's formal-verdict rule to a result batch.
func (g *GateSpec) checkFormal(results []*Result) (bool, string) {
	for i, r := range results {
		switch r.Outcome {
		case Violated:
			return false, fmt.Sprintf("property %d (%s) violated", i, r.Property)
		case Inconclusive:
			if g.requireProved() {
				return false, fmt.Sprintf("property %d (%s) inconclusive and gate requires proved", i, r.Property)
			}
		}
	}
	return true, ""
}

// checkQuantSweep applies the formal rule to the baseline and the drift
// thresholds to every measured point.
func (g *GateSpec) checkQuantSweep(f *QuantSweepFinding) (bool, string) {
	if ok, reason := g.checkFormal(f.Base); !ok {
		return false, "baseline: " + reason
	}
	for _, pt := range f.Points {
		if Worst(pt.Results) == Violated {
			return false, fmt.Sprintf("%d-bit model violates a gated property", pt.Bits)
		}
		if g.MaxBoundDrift != nil && !math.IsNaN(pt.MaxBoundDelta) && pt.MaxBoundDelta > *g.MaxBoundDrift {
			return false, fmt.Sprintf("%d-bit bound drift %.6g exceeds max_bound_drift %.6g",
				pt.Bits, pt.MaxBoundDelta, *g.MaxBoundDrift)
		}
		if g.MaxValueDrift != nil && !math.IsNaN(pt.MaxValueDelta) && pt.MaxValueDelta > *g.MaxValueDrift {
			return false, fmt.Sprintf("%d-bit value drift %.6g exceeds max_value_drift %.6g",
				pt.Bits, pt.MaxValueDelta, *g.MaxValueDrift)
		}
	}
	return true, ""
}

// TransitionJSON is one recorded lifecycle transition of a model version —
// the unit of the registry's append-only audit log.
type TransitionJSON struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Reason   string `json:"reason,omitempty"`
	AtUnixMS int64  `json:"at_unix_ms"`
}

// ModelVersionJSON is the wire document for one registered model version:
// identity, lifecycle state, gate outcome, and serving counters. The
// registry's HTTP surface (GET /v1/models, submit/promote/rollback
// responses) and the /metrics registry block both speak this shape.
type ModelVersionJSON struct {
	Model   string `json:"model"`
	Version int    `json:"version"`
	// State is one of pending, rejected, admitted, canary, live, retired.
	State string `json:"state"`
	// Fingerprint is the version's compile-workload fingerprint (the
	// cache key its warm artifact lives under).
	Fingerprint string `json:"fingerprint"`
	// MonitorFingerprint identifies the serving monitor workload, when
	// the version was submitted with one.
	MonitorFingerprint string `json:"monitor_fingerprint,omitempty"`
	// CanaryPercent is the configured traffic share while State is
	// canary.
	CanaryPercent int `json:"canary_percent,omitempty"`
	// Gate is the evaluated admission decision (nil while pending or
	// when the gate errored before evaluating).
	Gate *GateDecisionJSON `json:"gate,omitempty"`
	// GateError records an execution failure of the gate run itself.
	GateError string `json:"gate_error,omitempty"`
	// SubmittedUnixMS timestamps the submission.
	SubmittedUnixMS int64 `json:"submitted_unix_ms,omitempty"`
	// Transitions is the version's lifecycle history, oldest first.
	Transitions []TransitionJSON `json:"transitions,omitempty"`
	// Requests/Inputs/Flagged count traffic served by this version via
	// /v1/infer?model=, and how many inputs its monitor flagged.
	Requests int64 `json:"requests"`
	Inputs   int64 `json:"inputs"`
	Flagged  int64 `json:"flagged"`
}
