package vnn

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/verify"
)

// portfolioNet builds a small deterministic ReLU network for analysis
// tests: 3 inputs, one hidden layer, 2 outputs.
func portfolioNet(t *testing.T, hidden int) *Network {
	t.Helper()
	rng := rand.New(rand.NewSource(11))
	return NewNetwork(NetworkConfig{
		Name: "portfolio", InputDim: 3, Hidden: []int{hidden}, OutputDim: 2,
		HiddenAct: ReLU, OutputAct: Identity,
	}, rng)
}

func unitBoxRegion(dim int) *Region {
	box := make([]Interval, dim)
	for i := range box {
		box[i] = Interval{Lo: -1, Hi: 1}
	}
	return &Region{Box: box}
}

func randomInputs(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	data := make([][]float64, n)
	for i := range data {
		data[i] = make([]float64, dim)
		for j := range data[i] {
			data[i][j] = rng.Float64()*2 - 1
		}
	}
	return data
}

func TestAnalyzePortfolio(t *testing.T) {
	net := portfolioNet(t, 6)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := randomInputs(64, 3, 5)
	samples := make([]Sample, len(data))
	for i, x := range data {
		samples[i] = Sample{X: x, Y: []float64{0}}
	}
	findings, err := Analyze(context.Background(), cn,
		&Coverage{Data: data, MaxTests: 500, Seed: 7},
		&Traceability{Data: data, TopK: 2},
		&DataValidation{Data: samples, Rules: []DataRule{FiniteRule(), RangeRule(-1, 1)}},
		&Verification{Properties: []Property{MaxOutput(0), AtMost(0, 100)}},
		&Falsification{Outputs: []int{0}, Restarts: 2, Steps: 10, Seed: 3},
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(findings) != 5 {
		t.Fatalf("findings = %d", len(findings))
	}
	wantKinds := []string{KindCoverage, KindTraceability, KindDataValidation, KindVerify, KindFalsify}
	for i, f := range findings {
		if f.Kind != wantKinds[i] {
			t.Fatalf("finding %d kind %q, want %q", i, f.Kind, wantKinds[i])
		}
	}
	cov := findings[0].Coverage
	if cov == nil || cov.Suite.Tests() < 64 {
		t.Fatalf("coverage finding missing or too small: %+v", cov)
	}
	if cov.Conditions != 6 || cov.BranchCombinations != "64" || cov.RequiredMCDCTests != 7 {
		t.Fatalf("MC/DC constants wrong: %+v", cov)
	}
	tr := findings[1].Traceability
	if tr == nil || len(tr.Neurons) != 6 || tr.Conditions == nil {
		t.Fatal("traceability finding incomplete")
	}
	dv := findings[2].DataValidation
	if dv == nil || dv.Report.Samples != 64 || !dv.Report.Valid() {
		t.Fatalf("data validation finding wrong: %+v", dv)
	}
	ver := findings[3].Verification
	if len(ver) != 2 || ver[0].Outcome != Proved || ver[1].Outcome != Proved {
		t.Fatalf("verification finding wrong: %+v", ver)
	}
	fa := findings[4].Falsification
	if fa == nil || fa.Best == nil {
		t.Fatal("falsification finding missing")
	}
	// The incomplete attack can never beat the complete verifier.
	if fa.Value > ver[0].Value+1e-9 {
		t.Fatalf("attack %g beats verified max %g", fa.Value, ver[0].Value)
	}
}

// TestTraceabilityReusesCompiledBounds is the end-to-end instrumentation
// check of the bounds-reuse contract: running a traceability analysis on a
// compiled network must perform zero additional propagation passes — the
// interval conditions come straight from the compiled artifact.
func TestTraceabilityReusesCompiledBounds(t *testing.T) {
	net := portfolioNet(t, 5)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	data := randomInputs(32, 3, 9)
	before := bounds.Passes()
	f, err := AnalyzeOne(context.Background(), cn, &Traceability{Data: data})
	if err != nil {
		t.Fatal(err)
	}
	if got := bounds.Passes() - before; got != 0 {
		t.Fatalf("traceability analysis performed %d propagation passes, want 0", got)
	}
	if f.Traceability.Conditions == nil {
		t.Fatal("conditions missing despite compiled bounds")
	}
	// The compiled pre-activation bounds are what the conditions must
	// reflect: a stable neuron in the compiled view must not be
	// conditional in the report.
	pre := cn.PreActivationBounds()
	for li, row := range pre {
		for j, iv := range row {
			stable := iv.Lo >= 0 || iv.Hi <= 0
			cond := f.Traceability.Conditions[li][j]
			if stable && cond == 0 { // trace.Conditional == 0
				t.Fatalf("neuron (%d,%d) stable in compiled bounds but conditional in report", li, j)
			}
		}
	}
}

// TestQuantFingerprintRoundTrip pins the quantization/wire contract:
// weights snapped to the exact b-bit grid survive quant → MarshalNetwork →
// UnmarshalNetwork → Fingerprint bit-identically, and distinct bit-widths
// produce distinct fingerprints.
func TestQuantFingerprintRoundTrip(t *testing.T) {
	net := portfolioNet(t, 8)
	region := unitBoxRegion(3)
	seen := map[string]int{}
	for _, bits := range []int{4, 6, 8, 12} {
		qnet, _, err := Quantize(net, bits)
		if err != nil {
			t.Fatal(err)
		}
		fp, err := Fingerprint(qnet, region, Options{})
		if err != nil {
			t.Fatal(err)
		}
		data, err := MarshalNetwork(qnet)
		if err != nil {
			t.Fatal(err)
		}
		back, err := UnmarshalNetwork(data)
		if err != nil {
			t.Fatal(err)
		}
		// Bit-identical weights after the wire round trip...
		for li, l := range qnet.Layers {
			for r, row := range l.W {
				for c, w := range row {
					if got := back.Layers[li].W[r][c]; math.Float64bits(got) != math.Float64bits(w) {
						t.Fatalf("int%d layer %d w[%d][%d]: %x != %x", bits, li, r, c,
							math.Float64bits(got), math.Float64bits(w))
					}
				}
			}
		}
		// ...and therefore a bit-identical fingerprint.
		fp2, err := Fingerprint(back, region, Options{})
		if err != nil {
			t.Fatal(err)
		}
		if fp2 != fp {
			t.Fatalf("int%d fingerprint changed across the wire: %s != %s", bits, fp2, fp)
		}
		if prev, dup := seen[fp]; dup {
			t.Fatalf("bit-widths %d and %d share fingerprint %s", prev, bits, fp)
		}
		seen[fp] = bits
	}
	// The quantized models must also differ from the float original.
	if fp0, err := Fingerprint(net, region, Options{}); err != nil {
		t.Fatal(err)
	} else if _, dup := seen[fp0]; dup {
		t.Fatal("a quantized fingerprint collides with the float model")
	}
}

// TestQuantSweepCompilesOncePerWidth asserts the sweep's cost contract:
// one compilation (one encoding pass) per bit-width, none for the
// baseline (which reuses the already-compiled network), and no
// re-encoding during any of the verification batches.
func TestQuantSweepCompilesOncePerWidth(t *testing.T) {
	net := portfolioNet(t, 6)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	props := []Property{MaxOutput(0), AtMost(0, 100)}
	bitsList := []int{8, 6, 4}

	var compiles int
	countingCompile := func(ctx context.Context, fp string, n *Network, r *Region, o Options) (*CompiledNetwork, error) {
		if fp == "" {
			t.Error("compile func received no fingerprint")
		}
		compiles++
		return Compile(ctx, n, r, o)
	}
	before := verify.EncodePasses()
	f, err := AnalyzeOne(context.Background(), cn, &QuantSweep{
		Bits: bitsList, Properties: props, Compile: countingCompile,
	})
	if err != nil {
		t.Fatal(err)
	}
	if compiles != len(bitsList) {
		t.Fatalf("%d compiles for %d widths", compiles, len(bitsList))
	}
	if got := verify.EncodePasses() - before; got != int64(len(bitsList)) {
		t.Fatalf("%d encoding passes for %d widths, want exactly one each", got, len(bitsList))
	}
	qs := f.QuantSweep
	if len(qs.Base) != len(props) || len(qs.Points) != len(bitsList) {
		t.Fatalf("finding shape: %d base, %d points", len(qs.Base), len(qs.Points))
	}
	for i, pt := range qs.Points {
		if pt.Bits != bitsList[i] || pt.Fingerprint == "" || len(pt.Results) != len(props) {
			t.Fatalf("point %d malformed: %+v", i, pt)
		}
		// Coarser grids cannot shrink the weight perturbation.
		if i > 0 && pt.Info.MaxWeightError+1e-12 < qs.Points[i-1].Info.MaxWeightError {
			t.Fatalf("weight error not monotone: int%d %g < int%d %g",
				pt.Bits, pt.Info.MaxWeightError, qs.Points[i-1].Bits, qs.Points[i-1].Info.MaxWeightError)
		}
	}
}

// TestQuantSweepMatchesDirectPath pins sweep answers to the plain
// compile-and-verify path: the sweep is a convenience, not a different
// engine.
func TestQuantSweepMatchesDirectPath(t *testing.T) {
	net := portfolioNet(t, 6)
	region := unitBoxRegion(3)
	opts := Options{Workers: 1}
	cn, err := Compile(context.Background(), net, region, opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := AnalyzeOne(context.Background(), cn, &QuantSweep{
		Bits: []int{6}, Properties: []Property{MaxOutput(1)},
	})
	if err != nil {
		t.Fatal(err)
	}
	qnet, _, err := Quantize(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	qcn, err := Compile(context.Background(), qnet, region, opts)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := VerifyOne(context.Background(), qcn, MaxOutput(1))
	if err != nil {
		t.Fatal(err)
	}
	got := f.QuantSweep.Points[0].Results[0]
	if math.Float64bits(got.Value) != math.Float64bits(direct.Value) ||
		math.Float64bits(got.UpperBound) != math.Float64bits(direct.UpperBound) {
		t.Fatalf("sweep %v/%v != direct %v/%v", got.Value, got.UpperBound, direct.Value, direct.UpperBound)
	}
}

func TestAnalyzeValidatesBeforeRunning(t *testing.T) {
	net := portfolioNet(t, 4)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	cases := []Analysis{
		&Coverage{}, // no data, no budget
		&Coverage{Data: [][]float64{{1, 2}}, MaxTests: 10}, // wrong dim
		&Traceability{}, // no data
		&Traceability{Data: [][]float64{{0, 0, 0}}, FeatureNames: []string{"a"}},
		&QuantSweep{Bits: []int{1}, Properties: []Property{MaxOutput(0)}},
		&QuantSweep{Bits: []int{8}},
		&QuantSweep{Bits: []int{8}, Properties: []Property{MaxOutput(9)}}, // bad output
		&QuantSweep{Bits: []int{8}, Properties: []Property{MaxOutput(0)}, Base: []*Result{}},
		&Verification{Properties: []Property{MaxOutput(9)}},  // bad output
		&Verification{Properties: []Property{AtMost(-1, 1)}}, // negative output
		&Verification{Properties: []Property{MinOutput(2)}},  // == dim
		&Verification{Properties: []Property{MaxLinear(map[int]float64{5: 1})}},
		&DataValidation{Rules: []DataRule{FiniteRule()}},
		&DataValidation{Data: []Sample{{X: []float64{0}}}},
		&Verification{},
		&Falsification{},
		&Falsification{Outputs: []int{7}},
	}
	for i, a := range cases {
		if _, err := Analyze(context.Background(), cn, a); err == nil {
			t.Fatalf("case %d (%s): invalid analysis accepted", i, a.Kind())
		}
	}
	if _, err := Analyze(context.Background(), cn); err == nil {
		t.Fatal("empty batch accepted")
	}
}

func TestAnalysisSpecRoundTrip(t *testing.T) {
	specs := []AnalysisSpec{
		{Kind: KindVerify, Properties: []PropertySpec{{Kind: "max", Outputs: []int{0, 1}}}},
		{Kind: KindCoverage, MaxTests: 100, Seed: 3},
		{Kind: KindTraceability, Data: [][]float64{{0, 0, 0}}},
		{Kind: KindQuantSweep, Bits: []int{8, 4}, Properties: []PropertySpec{{Kind: "min", Output: intPtr(0)}}},
		{Kind: KindDataValidation, Data: [][]float64{{0, 0, 0}}, Rules: []DataRuleSpec{{Kind: "finite"}}},
		{Kind: KindFalsify, Outputs: []int{1}},
	}
	net := portfolioNet(t, 4)
	for i := range specs {
		a, err := specs[i].Analysis()
		if err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
		if a.Kind() != specs[i].Kind {
			t.Fatalf("spec %d kind %q != %q", i, a.Kind(), specs[i].Kind)
		}
		if err := specs[i].ValidateFor(net); err != nil {
			t.Fatalf("spec %d: %v", i, err)
		}
	}

	bad := []AnalysisSpec{
		{},
		{Kind: "nope"},
		{Kind: KindVerify},
		{Kind: KindCoverage},
		{Kind: KindQuantSweep, Bits: []int{8}},
		{Kind: KindDataValidation, Data: [][]float64{{0}}},
		{Kind: KindDataValidation, Data: [][]float64{{0}}, Rules: []DataRuleSpec{{Kind: "range"}}},
		{Kind: KindDataValidation, Data: [][]float64{{0}}, Labels: [][]float64{{0}, {1}}, Rules: []DataRuleSpec{{Kind: "finite"}}},
		{Kind: KindFalsify},
	}
	for i := range bad {
		if _, err := bad[i].Analysis(); err == nil {
			t.Fatalf("bad spec %d accepted", i)
		}
	}

	badFor := []AnalysisSpec{
		{Kind: KindFalsify, Outputs: []int{9}},
		{Kind: KindTraceability, Data: [][]float64{{0}}},
		{Kind: KindQuantSweep, Bits: []int{99}, Properties: []PropertySpec{{Kind: "max", Outputs: []int{0}}}},
		{Kind: KindVerify, Properties: []PropertySpec{{Kind: "max", Outputs: []int{9}}}},
	}
	for i := range badFor {
		if _, err := badFor[i].Analysis(); err != nil {
			continue // shape-invalid is fine too
		}
		if err := badFor[i].ValidateFor(net); err == nil {
			t.Fatalf("mismatched spec %d accepted for network", i)
		}
	}
}

func TestAnalysisReportJSON(t *testing.T) {
	net := portfolioNet(t, 5)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(context.Background(), cn,
		&Verification{Properties: []Property{MaxOutput(0)}},
		&Coverage{MaxTests: 200, Seed: 1},
		&QuantSweep{Bits: []int{8}, Properties: []Property{MaxOutput(0)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewAnalysisReport(net, findings)
	if rep.Arch != net.ArchString() || len(rep.Analyses) != 3 {
		t.Fatalf("report shape: arch %q, %d analyses", rep.Arch, len(rep.Analyses))
	}
	if rep.Worst != "proved" {
		t.Fatalf("worst = %q", rep.Worst)
	}
	// Verification results are flattened for legacy consumers.
	if len(rep.Results) != 1 || rep.Results[0].Outcome != "proved" {
		t.Fatalf("flattened results: %+v", rep.Results)
	}
	if rep.Analyses[1].Coverage == nil || rep.Analyses[1].Coverage.Tests == 0 {
		t.Fatalf("coverage JSON missing: %+v", rep.Analyses[1])
	}
	qj := rep.Analyses[2].QuantSweep
	if qj == nil || len(qj.Points) != 1 || qj.Points[0].Fingerprint == "" {
		t.Fatalf("quant sweep JSON missing: %+v", qj)
	}
}

// TestQuantSweepReusesProvidedBaseline: a caller-supplied Base skips the
// baseline re-verification and is echoed in the finding.
func TestQuantSweepReusesProvidedBaseline(t *testing.T) {
	net := portfolioNet(t, 6)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prop := MaxOutput(0)
	baseline, err := VerifyOne(context.Background(), cn, prop)
	if err != nil {
		t.Fatal(err)
	}
	f, err := AnalyzeOne(context.Background(), cn, &QuantSweep{
		Bits: []int{8}, Properties: []Property{prop}, Base: []*Result{baseline},
	})
	if err != nil {
		t.Fatal(err)
	}
	if f.QuantSweep.Base[0] != baseline {
		t.Fatal("provided baseline not reused")
	}
	if math.IsNaN(f.QuantSweep.Points[0].MaxBoundDelta) {
		t.Fatal("deltas not measured against the provided baseline")
	}
}

// TestQuantSweepAnytimeTruncation: a budget that expires mid-ladder
// truncates the sweep to the widths already measured instead of erroring
// away the whole finding.
func TestQuantSweepAnytimeTruncation(t *testing.T) {
	net := portfolioNet(t, 6)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	prop := MaxOutput(0)
	baseline, err := VerifyOne(context.Background(), cn, prop)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	expiringCompile := func(c context.Context, fp string, n *Network, r *Region, o Options) (*CompiledNetwork, error) {
		calls++
		if calls >= 2 {
			// The budget runs out while the second width compiles (the
			// shape of a cached-compile waiter giving up).
			cancel()
			return nil, ctx.Err()
		}
		return Compile(c, n, r, o)
	}
	f, err := AnalyzeOne(ctx, cn, &QuantSweep{
		Bits: []int{8, 6, 4}, Properties: []Property{prop},
		Base: []*Result{baseline}, Compile: expiringCompile,
	})
	if err != nil {
		t.Fatalf("expired budget must truncate, not error: %v", err)
	}
	if len(f.QuantSweep.Points) != 1 || f.QuantSweep.Points[0].Bits != 8 {
		t.Fatalf("ladder not truncated to the measured widths: %+v", f.QuantSweep.Points)
	}
}

// TestAnalysisReportWithoutFormalVerdictIsInconclusive guards the wire
// contract that a report with no verification results never claims
// "proved": a falsify- or coverage-only batch carries no formal verdict.
func TestAnalysisReportWithoutFormalVerdictIsInconclusive(t *testing.T) {
	net := portfolioNet(t, 4)
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	findings, err := Analyze(context.Background(), cn,
		&Coverage{MaxTests: 50, Seed: 1},
		&Falsification{Outputs: []int{0}, Restarts: 1, Steps: 5},
	)
	if err != nil {
		t.Fatal(err)
	}
	rep := NewAnalysisReport(net, findings)
	if rep.Worst != "inconclusive" {
		t.Fatalf("worst = %q for a formal-free batch, want inconclusive", rep.Worst)
	}
}

// TestCoverageGenerationRespectsLinearConstraints: generated tests for a
// linearly constrained region must all lie inside the region, not just
// its bounding box.
func TestCoverageGenerationRespectsLinearConstraints(t *testing.T) {
	net := portfolioNet(t, 6)
	region := unitBoxRegion(3)
	// x0 + x1 <= 0: half of the box is out of region.
	region.Linear = []LinearConstraint{{
		Coeffs: map[int]float64{0: 1, 1: 1}, Sense: lp.LE, RHS: 0,
	}}
	cn, err := Compile(context.Background(), net, region, Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	f, err := AnalyzeOne(context.Background(), cn, &Coverage{MaxTests: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Coverage.Generated) == 0 {
		t.Fatal("nothing generated inside the constrained region")
	}
	for i, x := range f.Coverage.Generated {
		if x[0]+x[1] > 1e-9 {
			t.Fatalf("generated input %d violates the region constraint: %v", i, x)
		}
	}
}

// TestAnalyzeProgressTagsAnalysisIndex checks the progress stream contract:
// events emitted during an Analyze batch carry the emitting analysis's
// index on top of the property index.
func TestAnalyzeProgressTagsAnalysisIndex(t *testing.T) {
	net := portfolioNet(t, 10)
	var events []Event
	cn, err := Compile(context.Background(), net, unitBoxRegion(3), Options{
		Workers:  1,
		Progress: func(ev Event) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Analyze(context.Background(), cn,
		&Verification{Properties: []Property{MaxOutput(0)}},
		&Verification{Properties: []Property{MaxOutput(1)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, ev := range events {
		if ev.Analysis < 0 || ev.Analysis > 1 {
			t.Fatalf("event with analysis index %d", ev.Analysis)
		}
		seen[ev.Analysis] = true
	}
	// Terminal events are always emitted (force flush at solve end), so
	// both analyses must have produced at least one tagged event.
	if !seen[0] || !seen[1] {
		t.Fatalf("missing tagged events: %v (got %d events)", seen, len(events))
	}
}

func intPtr(v int) *int { return &v }
