// Wire schema: the one machine-readable encoding of verification inputs
// and results that every surface speaks — `annverify -json` on the
// command line and the vnnd HTTP service both emit Report/ResultJSON, and
// the service decodes its requests through PropertySpec/RegionSpec. A
// script that parses one parses the other.
//
// JSON cannot represent non-finite floats, so unbounded values (±Inf
// bounds before any search, the no-witness -Inf value) are encoded by
// omission: a missing "upper_bound" means no finite upper bound was
// proven. Finite float64 values survive the trip bit-exactly (Go emits
// the shortest representation that round-trips).

package vnn

import (
	"fmt"
	"math"
	"strconv"

	"repro/internal/lp"
)

// StatsJSON is the wire form of Stats.
type StatsJSON struct {
	ElapsedMS     float64 `json:"elapsed_ms"`
	Nodes         int     `json:"nodes"`
	LPPivots      int     `json:"lp_pivots"`
	Binaries      int     `json:"binaries"`
	StableNeurons int     `json:"stable_neurons"`
	HiddenNeurons int     `json:"hidden_neurons"`
}

// ResultJSON is the wire form of one Result. Pointer fields are omitted
// when the underlying value is non-finite (see the package comment).
type ResultJSON struct {
	// Property is the human-readable rendering of the answered property.
	Property string `json:"property"`
	// Outcome is "proved", "violated" or "inconclusive".
	Outcome string `json:"outcome"`
	Exact   bool   `json:"exact"`
	// Value is the best witnessed value; omitted when no witness exists.
	Value *float64 `json:"value,omitempty"`
	// LowerBound/UpperBound are the proven anytime bounds.
	LowerBound *float64  `json:"lower_bound,omitempty"`
	UpperBound *float64  `json:"upper_bound,omitempty"`
	Witness    []float64 `json:"witness,omitempty"`
	// Radius and Iterations are set by resilience queries only.
	Radius     *float64  `json:"radius,omitempty"`
	Iterations int       `json:"iterations,omitempty"`
	Stats      StatsJSON `json:"stats"`
}

// JSON renders the result in the shared wire schema.
func (r *Result) JSON() ResultJSON {
	out := ResultJSON{
		Outcome:    r.Outcome.String(),
		Exact:      r.Exact,
		LowerBound: finitePtr(r.LowerBound),
		UpperBound: finitePtr(r.UpperBound),
		Witness:    r.Witness,
		Iterations: r.Iterations,
		Stats: StatsJSON{
			ElapsedMS:     float64(r.Stats.Elapsed.Microseconds()) / 1e3,
			Nodes:         r.Stats.Nodes,
			LPPivots:      r.Stats.LPPivots,
			Binaries:      r.Stats.Binaries,
			StableNeurons: r.Stats.StableNeurons,
			HiddenNeurons: r.Stats.HiddenNeurons,
		},
	}
	if r.Property != nil {
		out.Property = r.Property.String()
	}
	// Value is "the best witnessed value" (see Result): only a witness
	// makes it meaningful on the wire.
	if r.Witness != nil {
		out.Value = finitePtr(r.Value)
	}
	if r.Iterations > 0 {
		radius := r.Radius
		out.Radius = &radius
	}
	return out
}

// finitePtr boxes v, or returns nil when v cannot be represented in JSON.
func finitePtr(v float64) *float64 {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return nil
	}
	return &v
}

// Report is the top-level machine-readable document for a batch of
// results; `annverify -json` prints one and every vnnd verify response
// embeds one.
type Report struct {
	// Network and Arch identify the analyzed network (optional metadata).
	Network string `json:"network,omitempty"`
	Arch    string `json:"arch,omitempty"`
	// Worst aggregates the batch verdict (see Worst).
	Worst   string       `json:"worst"`
	Results []ResultJSON `json:"results"`
	// Analyses carries the typed findings of an Analyze batch (one entry
	// per analysis, in request order); nil for plain verify reports. See
	// NewAnalysisReport.
	Analyses []FindingJSON `json:"analyses,omitempty"`
}

// NewReport assembles the shared report document from a Verify batch.
func NewReport(net *Network, results []*Result) Report {
	rep := Report{
		Worst:   Worst(results).String(),
		Results: make([]ResultJSON, 0, len(results)),
	}
	if net != nil {
		rep.Network = net.Name
		rep.Arch = net.ArchString()
	}
	for _, r := range results {
		rep.Results = append(rep.Results, r.JSON())
	}
	return rep
}

// PropertySpec is the wire form of one Property. Kind selects the
// constructor; the other fields are that constructor's arguments:
//
//	{"kind":"max", "outputs":[1,6]}                      MaxOverOutputs
//	{"kind":"min", "output":0}                           MinOutput
//	{"kind":"max_linear", "coeffs":{"0":1,"2":-1}}       MaxLinear
//	{"kind":"at_most", "output":1, "threshold":3}        AtMost
//	{"kind":"linear_at_most", "coeffs":{...}, "threshold":3}
//	{"kind":"resilience", "x0":[...], "output":1, "threshold":3,
//	 "max_iterations":10}                                ResilienceRadius
//
// Coefficient maps are keyed by decimal output index (JSON object keys
// are strings).
type PropertySpec struct {
	Kind          string             `json:"kind"`
	Outputs       []int              `json:"outputs,omitempty"`
	Output        *int               `json:"output,omitempty"`
	Coeffs        map[string]float64 `json:"coeffs,omitempty"`
	Threshold     *float64           `json:"threshold,omitempty"`
	X0            []float64          `json:"x0,omitempty"`
	MaxIterations int                `json:"max_iterations,omitempty"`
}

// Property builds the property the spec describes.
func (s *PropertySpec) Property() (Property, error) {
	switch s.Kind {
	case "max":
		outs := s.Outputs
		if len(outs) == 0 && s.Output != nil {
			outs = []int{*s.Output}
		}
		if len(outs) == 0 {
			return nil, fmt.Errorf("vnn: property %q needs outputs", s.Kind)
		}
		return MaxOverOutputs(outs...), nil
	case "min":
		if s.Output == nil {
			return nil, fmt.Errorf("vnn: property %q needs output", s.Kind)
		}
		return MinOutput(*s.Output), nil
	case "max_linear":
		coeffs, err := parseCoeffs(s.Coeffs)
		if err != nil {
			return nil, err
		}
		return MaxLinear(coeffs), nil
	case "at_most":
		if s.Output == nil || s.Threshold == nil {
			return nil, fmt.Errorf("vnn: property %q needs output and threshold", s.Kind)
		}
		return AtMost(*s.Output, *s.Threshold), nil
	case "linear_at_most":
		if s.Threshold == nil {
			return nil, fmt.Errorf("vnn: property %q needs threshold", s.Kind)
		}
		coeffs, err := parseCoeffs(s.Coeffs)
		if err != nil {
			return nil, err
		}
		return LinearAtMost(coeffs, *s.Threshold), nil
	case "resilience":
		if s.Output == nil || s.Threshold == nil {
			return nil, fmt.Errorf("vnn: property %q needs output and threshold", s.Kind)
		}
		if len(s.X0) == 0 {
			return nil, fmt.Errorf("vnn: property %q needs the nominal input x0", s.Kind)
		}
		return ResilienceRadius(s.X0, *s.Output, *s.Threshold, s.MaxIterations), nil
	case "":
		return nil, fmt.Errorf("vnn: property spec has no kind")
	default:
		return nil, fmt.Errorf("vnn: unknown property kind %q", s.Kind)
	}
}

// ValidateFor checks the spec's references against a concrete network —
// output indices in range, nominal point of the right dimension — so a
// service can reject a mismatched query as a client error before running
// anything. Call after Property() has accepted the spec's shape.
func (s *PropertySpec) ValidateFor(net *Network) error {
	dim := net.OutputDim()
	checkOut := func(i int) error {
		if i < 0 || i >= dim {
			return fmt.Errorf("vnn: property %q references output %d of %d", s.Kind, i, dim)
		}
		return nil
	}
	for _, o := range s.Outputs {
		if err := checkOut(o); err != nil {
			return err
		}
	}
	if s.Output != nil {
		if err := checkOut(*s.Output); err != nil {
			return err
		}
	}
	for k := range s.Coeffs {
		if i, err := strconv.Atoi(k); err == nil {
			if err := checkOut(i); err != nil {
				return err
			}
		}
	}
	if s.Kind == "resilience" && len(s.X0) != net.InputDim() {
		return fmt.Errorf("vnn: resilience x0 has dimension %d, network input %d", len(s.X0), net.InputDim())
	}
	return nil
}

// parseCoeffs converts a JSON coefficient object into the index-keyed map
// the property constructors take.
func parseCoeffs(raw map[string]float64) (map[int]float64, error) {
	if len(raw) == 0 {
		return nil, fmt.Errorf("vnn: coeffs must be a non-empty index->coefficient object")
	}
	out := make(map[int]float64, len(raw))
	for k, v := range raw {
		i, err := strconv.Atoi(k)
		if err != nil {
			return nil, fmt.Errorf("vnn: coefficient key %q is not an output index", k)
		}
		out[i] = v
	}
	return out, nil
}

// LinearConstraintSpec is the wire form of one linear input constraint.
type LinearConstraintSpec struct {
	// Coeffs is keyed by decimal input index.
	Coeffs map[string]float64 `json:"coeffs"`
	// Sense is "<=", ">=" or "=".
	Sense string  `json:"sense"`
	RHS   float64 `json:"rhs"`
	Name  string  `json:"name,omitempty"`
}

// RegionSpec is the wire form of an input region: either one of the
// paper's named case-study regions,
//
//	{"name":"left_occupied"}   LeftOccupiedRegion
//	{"name":"front_close"}     FrontCloseRegion
//
// or an explicit box (one [lo, hi] pair per input) with optional linear
// constraints:
//
//	{"box":[[0,1],[0,1]], "linear":[{"coeffs":{"0":1,"1":1},
//	 "sense":"<=", "rhs":1.5}]}
type RegionSpec struct {
	Name   string                 `json:"name,omitempty"`
	Box    [][2]float64           `json:"box,omitempty"`
	Linear []LinearConstraintSpec `json:"linear,omitempty"`
}

// Region builds the region the spec describes.
func (s *RegionSpec) Region() (*Region, error) {
	if s.Name != "" {
		if len(s.Box) != 0 || len(s.Linear) != 0 {
			return nil, fmt.Errorf("vnn: region name %q excludes an explicit box", s.Name)
		}
		switch s.Name {
		case "left_occupied":
			return LeftOccupiedRegion(), nil
		case "front_close":
			return FrontCloseRegion(), nil
		default:
			return nil, fmt.Errorf("vnn: unknown region name %q", s.Name)
		}
	}
	if len(s.Box) == 0 {
		return nil, fmt.Errorf("vnn: region needs a name or a box")
	}
	region := &Region{Box: make([]Interval, len(s.Box))}
	for i, iv := range s.Box {
		region.Box[i] = Interval{Lo: iv[0], Hi: iv[1]}
	}
	for _, lc := range s.Linear {
		coeffs, err := parseCoeffs(lc.Coeffs)
		if err != nil {
			return nil, err
		}
		var sense lp.Sense
		switch lc.Sense {
		case "<=":
			sense = lp.LE
		case ">=":
			sense = lp.GE
		case "=", "==":
			sense = lp.EQ
		default:
			return nil, fmt.Errorf("vnn: constraint sense %q (want \"<=\", \">=\" or \"=\")", lc.Sense)
		}
		region.Linear = append(region.Linear, LinearConstraint{
			Coeffs: coeffs,
			Sense:  sense,
			RHS:    lc.RHS,
			Name:   lc.Name,
		})
	}
	return region, nil
}
