// Fleet wire format: a compiled artifact as bytes. MarshalCompiled
// renders everything a peer needs to serve a workload — the canonical
// network, the explicit region, the compile-relevant options and the
// proven bound analysis — and UnmarshalCompiled reconstructs a
// CompiledNetwork from it WITHOUT recompiling: only the MILP encoding
// (a deterministic, propagation-free transcription) is rebuilt locally.
//
// Trust is re-derived, never assumed: the importer recomputes the
// workload fingerprint from the decoded network/region/options and
// refuses a mismatch, and the received bounds are checked for
// containment in a fresh plain interval propagation — tightening only
// ever shrinks intervals, so any received interval that is not inside
// the plain propagation is corrupt (or unsound) and the import fails.
package vnn

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"math"
	"strconv"

	"repro/internal/bounds"
	"repro/internal/lp"
	"repro/internal/verify"
)

// FingerprintSetHash folds a fingerprint string (vnn1-, vnnmw1-,
// vnnm1-, any namespace) to the fixed 32-byte symbol the fleet's set
// reconciliation sketches operate on (internal/riblt). The fold is a
// domain-separated SHA-256, so distinct fingerprints collide with
// negligible probability and the mapping is stable across nodes and
// releases.
func FingerprintSetHash(fingerprint string) [32]byte {
	h := sha256.New()
	h.Write([]byte("vnnfleet1\x00"))
	h.Write([]byte(fingerprint))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// intervalJSON is one [lo, hi] pair on the wire; finite float64 values
// round-trip bit-exactly through Go's JSON encoding.
type intervalJSON = [2]float64

// CompiledDocJSON is the wire form of a compiled artifact.
type CompiledDocJSON struct {
	// Fingerprint is the compile-workload hash the document claims;
	// the importer recomputes and verifies it.
	Fingerprint string `json:"fingerprint"`
	// Network is the canonical network JSON (MarshalNetwork).
	Network json.RawMessage `json:"network"`
	// Region is the explicit region (box + linear constraints; never a
	// name, so the document is self-contained).
	Region RegionSpec `json:"region"`
	// Tighten records the compile-relevant option (part of the
	// fingerprint preimage).
	Tighten bool `json:"tighten,omitempty"`
	// Pre and Post are the proven per-layer bound analysis, one
	// [lo, hi] row per neuron per network layer, exactly as compiled
	// (LP-tightened when Tighten is set).
	Pre  [][]intervalJSON `json:"pre"`
	Post [][]intervalJSON `json:"post"`
}

// regionSpecOf renders a Region as an explicit, self-contained wire
// spec (the inverse of RegionSpec.Region for explicit regions; named
// regions are flattened to their boxes).
func regionSpecOf(r *Region) RegionSpec {
	spec := RegionSpec{Box: make([][2]float64, len(r.Box))}
	for i, iv := range r.Box {
		spec.Box[i] = [2]float64{iv.Lo, iv.Hi}
	}
	for _, lc := range r.Linear {
		coeffs := make(map[string]float64, len(lc.Coeffs))
		for i, v := range lc.Coeffs {
			coeffs[strconv.Itoa(i)] = v
		}
		sense := "<="
		switch lc.Sense {
		case lp.GE:
			sense = ">="
		case lp.EQ:
			sense = "="
		}
		spec.Linear = append(spec.Linear, LinearConstraintSpec{
			Coeffs: coeffs,
			Sense:  sense,
			RHS:    lc.RHS,
			Name:   lc.Name,
		})
	}
	return spec
}

// exportIntervals renders interval rows, rejecting non-finite values
// (JSON cannot carry them, and no sound compile over a valid region
// produces them).
func exportIntervals(rows []Interval) ([]intervalJSON, error) {
	out := make([]intervalJSON, len(rows))
	for i, iv := range rows {
		if math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) || math.IsInf(iv.Lo, 0) || math.IsInf(iv.Hi, 0) {
			return nil, fmt.Errorf("vnn: non-finite bound [%v, %v] cannot be exported", iv.Lo, iv.Hi)
		}
		out[i] = intervalJSON{iv.Lo, iv.Hi}
	}
	return out, nil
}

// MarshalCompiled renders cn as a self-contained document a peer can
// import with UnmarshalCompiled. For a fixed artifact the bytes are
// deterministic, and every float survives the trip bit-exactly.
func MarshalCompiled(cn *CompiledNetwork) ([]byte, error) {
	netDoc, err := MarshalNetwork(cn.Net())
	if err != nil {
		return nil, err
	}
	fp, err := Fingerprint(cn.Net(), cn.Region(), cn.opts)
	if err != nil {
		return nil, err
	}
	nb := cn.c.Bounds()
	doc := CompiledDocJSON{
		Fingerprint: fp,
		Network:     netDoc,
		Region:      regionSpecOf(cn.Region()),
		Tighten:     cn.opts.Tighten,
		Pre:         make([][]intervalJSON, len(nb.Layers)),
		Post:        make([][]intervalJSON, len(nb.Layers)),
	}
	for li, lb := range nb.Layers {
		if doc.Pre[li], err = exportIntervals(lb.Pre); err != nil {
			return nil, err
		}
		if doc.Post[li], err = exportIntervals(lb.Post); err != nil {
			return nil, err
		}
	}
	return json.Marshal(doc)
}

// importIntervals parses one layer's interval rows, checking shape,
// finiteness, ordering, and containment inside the corresponding
// plainly-propagated intervals (see UnmarshalCompiled).
func importIntervals(rows []intervalJSON, plain []Interval, what string, layer int) ([]Interval, error) {
	if len(rows) != len(plain) {
		return nil, fmt.Errorf("vnn: layer %d has %d %s bounds, network needs %d", layer, len(rows), what, len(plain))
	}
	out := make([]Interval, len(rows))
	for i, r := range rows {
		lo, hi := r[0], r[1]
		if math.IsNaN(lo) || math.IsNaN(hi) || math.IsInf(lo, 0) || math.IsInf(hi, 0) || lo > hi {
			return nil, fmt.Errorf("vnn: layer %d %s bound %d is not a finite interval: [%v, %v]", layer, what, i, lo, hi)
		}
		if lo < plain[i].Lo || hi > plain[i].Hi {
			return nil, fmt.Errorf("vnn: layer %d %s bound %d [%v, %v] is not contained in the propagated [%v, %v] — corrupt or unsound document",
				layer, what, i, lo, hi, plain[i].Lo, plain[i].Hi)
		}
		out[i] = Interval{Lo: lo, Hi: hi}
	}
	return out, nil
}

// UnmarshalCompiled reconstructs a compiled artifact from its wire
// form without recompiling (no bound propagation or tightening passes
// beyond one plain propagation used as the soundness check; zero
// vnn.Compile calls — see CompileCalls). The document's fingerprint is
// recomputed from its decoded content and must match, so a tampered
// network, region or option never enters a cache under a healthy key;
// the bound analysis must be contained in a fresh plain propagation,
// so tampered bounds cannot smuggle unsoundness in either. Returns the
// artifact and its verified fingerprint.
func UnmarshalCompiled(data []byte) (*CompiledNetwork, string, error) {
	var doc CompiledDocJSON
	if err := json.Unmarshal(data, &doc); err != nil {
		return nil, "", fmt.Errorf("vnn: unmarshal compiled: %w", err)
	}
	net, err := UnmarshalNetwork(doc.Network)
	if err != nil {
		return nil, "", err
	}
	if doc.Region.Name != "" {
		return nil, "", fmt.Errorf("vnn: compiled document region must be explicit, got name %q", doc.Region.Name)
	}
	region, err := doc.Region.Region()
	if err != nil {
		return nil, "", err
	}
	opts := Options{Tighten: doc.Tighten}
	fp, err := Fingerprint(net, region, opts)
	if err != nil {
		return nil, "", err
	}
	if fp != doc.Fingerprint {
		return nil, "", fmt.Errorf("vnn: compiled document claims fingerprint %s, content hashes to %s", doc.Fingerprint, fp)
	}

	// Soundness gate: plain interval propagation is monotone, and
	// tightening only intersects, so every honestly compiled interval is
	// contained in the plain one. Anything outside is corrupt.
	plain, err := bounds.Propagate(net, region.Box)
	if err != nil {
		return nil, "", err
	}
	if len(doc.Pre) != len(plain.Layers) || len(doc.Post) != len(plain.Layers) {
		return nil, "", fmt.Errorf("vnn: compiled document has %d/%d bound layers, network has %d",
			len(doc.Pre), len(doc.Post), len(plain.Layers))
	}
	nb := &bounds.NetworkBounds{
		Input:  append([]Interval(nil), plain.Input...),
		Layers: make([]bounds.LayerBounds, len(plain.Layers)),
	}
	for li := range plain.Layers {
		pre, err := importIntervals(doc.Pre[li], plain.Layers[li].Pre, "pre", li)
		if err != nil {
			return nil, "", err
		}
		post, err := importIntervals(doc.Post[li], plain.Layers[li].Post, "post", li)
		if err != nil {
			return nil, "", err
		}
		nb.Layers[li] = bounds.LayerBounds{Pre: pre, Post: post}
	}

	c, err := verify.CompileWithBounds(net, region, nb, doc.Tighten)
	if err != nil {
		return nil, "", err
	}
	return &CompiledNetwork{c: c, opts: opts}, fp, nil
}

// Options returns the compile options the artifact was built (or will
// be queried) with.
func (cn *CompiledNetwork) Options() Options { return cn.opts }

// SizeBytes estimates the resident size of the compiled artifact:
// weights, biases and the bound analysis, plus a flat overhead for the
// encoding skeleton. It is a deterministic accounting figure for cache
// byte budgets (vnnd.cache.bytes), not a malloc census.
func (cn *CompiledNetwork) SizeBytes() int64 {
	const fixedOverhead = 1 << 10
	var n int64 = fixedOverhead
	if cn.c == nil {
		return n // zero-value artifact (tests): just the overhead
	}
	for _, l := range cn.Net().Layers {
		n += int64(len(l.B)) * 8
		for _, row := range l.W {
			n += int64(len(row)) * 8
		}
		// Pre+post interval per neuron (2 × 2 float64), plus the MILP
		// encoding's per-neuron variables and rows, which mirror the
		// weight matrix closely enough to charge it once more.
		n += int64(len(l.B)) * 32
		for _, row := range l.W {
			n += int64(len(row)) * 8
		}
	}
	return n
}
