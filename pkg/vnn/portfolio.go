// Public re-exports that complete the dependability portfolio: network
// construction, structural-coverage constants, quantization, and the data
// validation rule machinery. With these, every pillar of the paper's
// certification argument is reachable from pkg/vnn alone — examples and
// external callers never import internal packages.
package vnn

import (
	"math/big"
	"math/rand"

	"repro/internal/coverage"
	"repro/internal/dataval"
	"repro/internal/nn"
	"repro/internal/quant"
	"repro/internal/trace"
	"repro/internal/train"
)

// Re-exported portfolio types. Aliases, not wrappers: values flow between
// the public API and the engine without conversion.
type (
	// NetworkConfig describes a network to construct with NewNetwork.
	NetworkConfig = nn.Config
	// Layer is one dense layer of a Network (for hand-built networks).
	Layer = nn.Layer
	// Activation selects a layer's nonlinearity.
	Activation = nn.Activation
	// CoverageSuite accumulates structural coverage over test inputs.
	CoverageSuite = coverage.Suite
	// CoverageGenOptions tune coverage-guided generation.
	CoverageGenOptions = coverage.GenerateOptions
	// TraceabilityReport is the neuron-to-feature traceability analysis.
	TraceabilityReport = trace.Report
	// TraceNeuron is the traceability record of one hidden neuron.
	TraceNeuron = trace.NeuronInfo
	// QuantInfo reports what quantization did to a network.
	QuantInfo = quant.Info
	// Sample is one supervised example (input X, label Y).
	Sample = train.Sample
	// DataRule is one validity condition over a single sample.
	DataRule = dataval.Rule
	// DataReport is the outcome of validating a dataset.
	DataReport = dataval.Report
	// DataViolation records one rule failure.
	DataViolation = dataval.Violation
	// FeatureStats summarizes one input feature across a dataset.
	FeatureStats = dataval.FeatureStats
)

// Activations, for constructing networks through the public API.
const (
	// Identity applies no nonlinearity (linear output layers).
	Identity = nn.Identity
	// ReLU is max(0, z) — the activation the MILP verifier encodes exactly.
	ReLU = nn.ReLU
	// Tanh is the smooth saturating activation of the paper's MC/DC
	// argument (no branches, so one test satisfies condition coverage).
	Tanh = nn.Tanh
)

// NewNetwork builds a freshly initialized network. A nil rng panics;
// callers own their randomness for reproducibility.
func NewNetwork(cfg NetworkConfig, rng *rand.Rand) *Network { return nn.New(cfg, rng) }

// ReLUConditions counts the branching conditions of a network: one per
// hidden ReLU neuron (the "if-then-else per neuron" of the paper's MC/DC
// argument).
func ReLUConditions(net *Network) int { return coverage.ReLUConditions(net) }

// BranchCombinations returns 2^conditions — the number of activation
// patterns exhaustive branch testing would have to cover.
func BranchCombinations(net *Network) *big.Int { return coverage.BranchCombinations(net) }

// RequiredMCDCTests returns the MC/DC lower bound on test-suite size: 1
// for branch-free (e.g. tanh) networks, conditions+1 with ReLU branches.
func RequiredMCDCTests(net *Network) int { return coverage.RequiredTests(net) }

// GenerateCoverage grows a coverage-guided test suite over a box by
// rejection sampling from the explicit source — the standalone form of the
// Coverage analysis, usable on networks that cannot be compiled (e.g.
// tanh). It returns the suite and the kept (coverage-improving) inputs.
func GenerateCoverage(net *Network, box []Interval, src rand.Source, opts CoverageGenOptions) (*CoverageSuite, [][]float64) {
	lo := make([]float64, len(box))
	hi := make([]float64, len(box))
	for i, iv := range box {
		lo[i], hi[i] = iv.Lo, iv.Hi
	}
	return coverage.Generate(net, lo, hi, src, opts)
}

// Quantize returns a copy of net with weights and biases snapped to a
// symmetric signed b-bit grid per layer (bits in [2, 16]), plus
// quantization statistics. The quantized model is an ordinary Network
// with exactly representable weights, so Compile/Verify apply unchanged.
func Quantize(net *Network, bits int) (*Network, *QuantInfo, error) {
	return quant.Quantize(net, bits)
}

// OutputDeviation empirically measures the largest output difference
// between two networks over the probe inputs — the quick check that a
// quantized model still behaves like its float original.
func OutputDeviation(a, b *Network, probes [][]float64) float64 {
	return quant.OutputDeviation(a, b, probes)
}

// NewDataRule builds a validity rule from a closure; check returns "" for
// valid samples and a short reason otherwise.
func NewDataRule(name, desc string, check func(Sample) string) DataRule {
	return dataval.NewRule(name, desc, check)
}

// FiniteRule rejects samples containing NaN or infinite values.
func FiniteRule() DataRule { return dataval.FiniteRule() }

// RangeRule enforces that all inputs stay inside [lo, hi].
func RangeRule(lo, hi float64) DataRule { return dataval.RangeRule(lo, hi) }

// DimensionRule enforces fixed input/label dimensions.
func DimensionRule(xDim, yDim int) DataRule { return dataval.DimensionRule(xDim, yDim) }

// ValidateData checks every sample against every rule.
func ValidateData(data []Sample, rules []DataRule) *DataReport {
	return dataval.Validate(data, rules)
}

// SanitizeData returns the subset of data passing all rules, plus the
// removed count. Order is preserved.
func SanitizeData(data []Sample, rules []DataRule) (clean []Sample, removed int) {
	return dataval.Sanitize(data, rules)
}

// DataStats computes per-feature statistics; empty data yields nil.
func DataStats(data []Sample) []FeatureStats { return dataval.Stats(data) }

// coverageSource builds the seeded random source Coverage analyses draw
// from, so CLI and service runs of the same seed generate the same suite.
func coverageSource(seed int64) rand.Source { return rand.NewSource(seed) }
