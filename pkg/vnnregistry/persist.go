// Registry persistence: a JSON snapshot (registry.json, written atomically
// via tmp+rename on every state change) plus an append-only transition log
// (transitions.log, one JSON line per lifecycle step — the audit trail the
// snapshot's per-version history summarizes). Recovery replays the
// snapshot through the injected compile/monitor builders so a restarted
// daemon rebuilds its warm serving table from durable state alone.

package vnnregistry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"time"

	"repro/pkg/vnn"
)

const (
	// snapshotSchema versions the on-disk format.
	snapshotSchema = "vnnd-registry/v1"
	snapshotFile   = "registry.json"
	transitionsLog = "transitions.log"
)

// persister owns the registry's file handles. Mutating methods are called
// under the registry lock.
type persister struct {
	dir  string
	logf func(format string, args ...any)
	log  *os.File
}

// transitionRecord is one line of transitions.log.
type transitionRecord struct {
	AtUnixMS int64  `json:"at_unix_ms"`
	Model    string `json:"model"`
	Version  int    `json:"version"`
	From     string `json:"from,omitempty"`
	To       string `json:"to"`
	Reason   string `json:"reason,omitempty"`
}

func (p *persister) appendTransition(rec transitionRecord) {
	if p.dir == "" {
		return
	}
	if p.log == nil {
		f, err := os.OpenFile(filepath.Join(p.dir, transitionsLog),
			os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			p.logf("vnnregistry: transition log: %v", err)
			return
		}
		p.log = f
	}
	line, err := json.Marshal(rec)
	if err == nil {
		_, err = p.log.Write(append(line, '\n'))
	}
	if err != nil {
		p.logf("vnnregistry: transition log: %v", err)
	}
}

func (p *persister) close() error {
	if p.log == nil {
		return nil
	}
	err := p.log.Close()
	p.log = nil
	return err
}

// snapshotJSON is the registry.json document.
type snapshotJSON struct {
	Schema string              `json:"schema"`
	Models []modelSnapshotJSON `json:"models"`
}

type modelSnapshotJSON struct {
	Name     string                `json:"name"`
	PrevLive int                   `json:"previous_live,omitempty"`
	Versions []versionSnapshotJSON `json:"versions"`
}

// versionSnapshotJSON carries everything needed to rebuild a version's
// serving state: the canonical network document, region and compile
// options reproduce the compiled artifact (bit-identically — compilation
// is deterministic for a fingerprint), and the marshaled monitor document
// restores the exact serving monitor without its build dataset.
type versionSnapshotJSON struct {
	Version            int                   `json:"version"`
	State              State                 `json:"state"`
	Fingerprint        string                `json:"fingerprint"`
	Network            json.RawMessage       `json:"network"`
	Region             vnn.RegionSpec        `json:"region"`
	Tighten            bool                  `json:"tighten,omitempty"`
	Workers            int                   `json:"workers,omitempty"`
	CanaryPercent      int                   `json:"canary_percent,omitempty"`
	Gate               *vnn.GateSpec         `json:"gate,omitempty"`
	Decision           *vnn.GateDecisionJSON `json:"decision,omitempty"`
	GateError          string                `json:"gate_error,omitempty"`
	Monitor            json.RawMessage       `json:"monitor,omitempty"`
	MonitorFingerprint string                `json:"monitor_fingerprint,omitempty"`
	MonitorGamma       int                   `json:"monitor_gamma,omitempty"`
	MonitorLayers      []int                 `json:"monitor_layers,omitempty"`
	SubmittedUnixMS    int64                 `json:"submitted_unix_ms"`
	Transitions        []vnn.TransitionJSON  `json:"transitions,omitempty"`
}

// saveLocked writes the snapshot atomically. Persistence failures are
// logged, not fatal: in-memory state remains authoritative for this
// process, and the next successful save catches the disk up.
func (r *Registry) saveLocked() {
	if r.persist.dir == "" {
		return
	}
	snap := snapshotJSON{Schema: snapshotSchema}
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	// Deterministic file content: models sorted by name.
	for i := 1; i < len(names); i++ {
		for j := i; j > 0 && names[j] < names[j-1]; j-- {
			names[j], names[j-1] = names[j-1], names[j]
		}
	}
	for _, name := range names {
		m := r.models[name]
		ms := modelSnapshotJSON{Name: m.name, PrevLive: m.prevLive}
		for _, v := range m.versions {
			ms.Versions = append(ms.Versions, versionSnapshotJSON{
				Version:            v.seq,
				State:              v.state,
				Fingerprint:        v.fingerprint,
				Network:            v.networkJSON,
				Region:             v.regionSpec,
				Tighten:            v.tighten,
				Workers:            v.workers,
				CanaryPercent:      v.canaryPercent,
				Gate:               v.gate,
				Decision:           v.decision,
				GateError:          v.gateErr,
				Monitor:            v.monitorDoc,
				MonitorFingerprint: v.monitorFP,
				MonitorGamma:       v.monitorOpts.Gamma,
				MonitorLayers:      v.monitorOpts.Layers,
				SubmittedUnixMS:    v.submitted.UnixMilli(),
				Transitions:        v.transitions,
			})
		}
		snap.Models = append(snap.Models, ms)
	}
	data, err := json.MarshalIndent(&snap, "", "  ")
	if err != nil {
		r.logf("vnnregistry: snapshot marshal: %v", err)
		return
	}
	path := filepath.Join(r.persist.dir, snapshotFile)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, append(data, '\n'), 0o644); err != nil {
		r.logf("vnnregistry: snapshot write: %v", err)
		return
	}
	if err := os.Rename(tmp, path); err != nil {
		r.logf("vnnregistry: snapshot rename: %v", err)
	}
}

// Recover loads the snapshot (if any) and rebuilds serving state: every
// version in a routable-or-rollbackable state is recompiled through the
// injected cache and its monitor restored from the persisted document.
// Versions found pending — a gate interrupted by the crash — are rejected
// with the interruption recorded; certification never resumes implicitly.
// Until Recover returns, the registry answers ErrNotReady (and /readyz
// 503); liveness is unaffected. A load failure parks the registry in a
// permanent not-ready state with the reason reported, rather than serving
// from a half-read table.
func (r *Registry) Recover(ctx context.Context) error {
	fail := func(err error) error {
		msg := err.Error()
		r.readyErr.Store(&msg)
		r.recovering.Store(false)
		r.logf("vnnregistry: %v", err)
		return err
	}
	if r.persist.dir != "" {
		if err := os.MkdirAll(r.persist.dir, 0o755); err != nil {
			return fail(fmt.Errorf("recover: %w", err))
		}
		data, err := os.ReadFile(filepath.Join(r.persist.dir, snapshotFile))
		switch {
		case errors.Is(err, fs.ErrNotExist):
			// Fresh data dir: nothing to recover.
		case err != nil:
			return fail(fmt.Errorf("recover: %w", err))
		default:
			var snap snapshotJSON
			if err := json.Unmarshal(data, &snap); err != nil {
				return fail(fmt.Errorf("recover: %s: %w", snapshotFile, err))
			}
			if snap.Schema != snapshotSchema {
				return fail(fmt.Errorf("recover: %s has schema %q, want %q", snapshotFile, snap.Schema, snapshotSchema))
			}
			if err := r.load(ctx, &snap); err != nil {
				return fail(fmt.Errorf("recover: %w", err))
			}
		}
	}
	r.mu.Lock()
	r.rebuildRoutesLocked()
	r.saveLocked()
	r.mu.Unlock()
	r.recovering.Store(false)
	r.ready.Store(true)
	return nil
}

// load rebuilds models from a decoded snapshot.
func (r *Registry) load(ctx context.Context, snap *snapshotJSON) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, ms := range snap.Models {
		m := &model{name: ms.Name, prevLive: ms.PrevLive}
		for i := range ms.Versions {
			vs := &ms.Versions[i]
			v, err := r.loadVersion(ctx, ms.Name, vs)
			if err != nil {
				return fmt.Errorf("model %s v%d: %w", ms.Name, vs.Version, err)
			}
			m.versions = append(m.versions, v)
		}
		r.models[ms.Name] = m
	}
	return nil
}

// loadVersion rebuilds one version, recompiling warm state where its
// lifecycle needs it.
func (r *Registry) loadVersion(ctx context.Context, modelName string, vs *versionSnapshotJSON) (*Version, error) {
	net, err := vnn.UnmarshalNetwork(vs.Network)
	if err != nil {
		return nil, fmt.Errorf("network: %w", err)
	}
	region, err := vs.Region.Region()
	if err != nil {
		return nil, fmt.Errorf("region: %w", err)
	}
	v := &Version{
		model:         modelName,
		seq:           vs.Version,
		state:         vs.State,
		fingerprint:   vs.Fingerprint,
		networkJSON:   vs.Network,
		regionSpec:    vs.Region,
		tighten:       vs.Tighten,
		workers:       vs.Workers,
		canaryPercent: vs.CanaryPercent,
		gate:          vs.Gate,
		decision:      vs.Decision,
		gateErr:       vs.GateError,
		monitorDoc:    vs.Monitor,
		monitorFP:     vs.MonitorFingerprint,
		monitorOpts:   vnn.MonitorOptions{Gamma: vs.MonitorGamma, Layers: vs.MonitorLayers},
		submitted:     time.UnixMilli(vs.SubmittedUnixMS),
		transitions:   vs.Transitions,
		net:           net,
		region:        region,
	}
	if v.state == StatePending {
		// The crash interrupted this version's gate; its certification
		// never completed, so it must not resume into admitted silently.
		v.gateErr = "gate interrupted by daemon restart"
		r.transitionLocked(v, StateRejected, v.gateErr)
		return v, nil
	}
	if v.state == StateRejected {
		return v, nil
	}
	// admitted/canary/live/retired all keep warm artifacts: live and
	// canary to serve, admitted to promote, retired to roll back to.
	opts := vnn.Options{Tighten: v.tighten, Workers: v.workers}
	cn, _, err := r.cfg.Compile(ctx, v.fingerprint, net, region, opts)
	if err != nil {
		return nil, fmt.Errorf("recompile: %w", err)
	}
	v.cn = cn
	if len(v.monitorDoc) > 0 {
		mon, err := vnn.UnmarshalMonitor(v.monitorDoc, cn)
		if err != nil {
			return nil, fmt.Errorf("monitor: %w", err)
		}
		v.monitor = mon
		if r.cfg.ImportMonitor != nil {
			r.cfg.ImportMonitor(mon)
		}
	}
	return v, nil
}
