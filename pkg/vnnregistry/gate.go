// The gate runner: one pending version's certification, executed through
// the injected compile/monitor caches and the vnn portfolio, decided by
// vnn.GateSpec.Evaluate, and recorded as a lifecycle transition. The host
// provides scheduling (admission tokens, timeouts) and tracing context;
// the registry owns the state change.

package vnnregistry

import (
	"context"
	"fmt"

	"repro/internal/obs"
	"repro/pkg/vnn"
)

// GateRunOptions carries the host's execution context into a gate run.
type GateRunOptions struct {
	// Opts are the fully-resolved run options (workers, progress sink);
	// the registry only adds per-analysis progress attribution.
	Opts vnn.Options
	// Span, when set, is the gate trace's root: the run hangs compile,
	// monitor-build, and one child per analysis off it.
	Span *obs.Span
}

// GateResult is a completed gate run: the version's post-decision wire
// document plus the findings that produced it, for the host to ship in
// the job result.
type GateResult struct {
	Doc      vnn.ModelVersionJSON
	Findings []*vnn.Finding
	CacheHit bool
	// CompileMS is the version's base-compile cost (whoever paid it).
	CompileMS float64
}

// RunGate executes the admission gate of a pending version: compile the
// serving artifact (through the host's cache), build the serving monitor
// when the submission carried one, run the gate's portfolio analyses, and
// evaluate the findings against the gate thresholds. The version
// transitions to admitted or rejected; either way the compiled artifact
// stays attached so an admitted version promotes without recompiling. A
// nil gate admits after the compile — the version is explicitly recorded
// as ungated.
//
// Execution errors (compile failure, analysis error, expired budget on a
// non-anytime path) reject the version with the error recorded: a version
// whose certification did not complete must never become routable.
func (r *Registry) RunGate(ctx context.Context, v *Version, o GateRunOptions) (*GateResult, error) {
	if !r.ready.Load() {
		return nil, ErrNotReady
	}
	r.mu.Lock()
	if v.state != StatePending {
		st := v.state
		r.mu.Unlock()
		return nil, fmt.Errorf("%w: gate on version %d in state %s", ErrBadTransition, v.seq, st)
	}
	r.mu.Unlock()

	res, err := r.runGateWork(ctx, v, o)

	r.mu.Lock()
	defer r.mu.Unlock()
	if err != nil {
		v.gateErr = err.Error()
		r.transitionLocked(v, StateRejected, "gate failed: "+err.Error())
		r.rebuildRoutesLocked()
		r.saveLocked()
		return nil, err
	}
	if res.decision.Pass {
		r.transitionLocked(v, StateAdmitted, res.reason)
	} else {
		r.transitionLocked(v, StateRejected, res.reason)
	}
	v.decision = &res.decision
	v.monitorData = nil // build input served its purpose; free it
	r.rebuildRoutesLocked()
	r.saveLocked()
	return &GateResult{
		Doc:       r.docLocked(v),
		Findings:  res.findings,
		CacheHit:  res.cacheHit,
		CompileMS: res.compileMS,
	}, nil
}

// gateWork is the lock-free portion of a gate run.
type gateWork struct {
	decision  vnn.GateDecisionJSON
	reason    string
	findings  []*vnn.Finding
	cacheHit  bool
	compileMS float64
}

func (r *Registry) runGateWork(ctx context.Context, v *Version, o GateRunOptions) (*gateWork, error) {
	span := o.Span
	if span == nil {
		// A detached span keeps the instrumentation unconditional; it is
		// simply never collected.
		span = obs.NewRecorder(obs.RecorderOptions{Ring: 1}).Start("gate", "detached").Root()
	}

	compileOpts := vnn.Options{Tighten: v.tighten, Workers: o.Opts.Workers}
	cacheSpan := span.Child("cache")
	cn, hit, err := r.cfg.Compile(ctx, v.fingerprint, v.net, v.region, compileOpts)
	cacheSpan.SetAttr("hit", hit)
	cacheSpan.End()
	if err != nil {
		return nil, fmt.Errorf("compile: %w", err)
	}
	w := &gateWork{cacheHit: hit, compileMS: float64(cn.CompileTime().Microseconds()) / 1e3}

	if len(v.monitorData) > 0 {
		if r.cfg.BuildMonitor == nil {
			return nil, fmt.Errorf("monitor workload submitted but registry has no monitor builder")
		}
		wfp := vnn.MonitorWorkloadFingerprint(v.fingerprint, v.monitorData, v.monitorOpts)
		monSpan := span.Child("monitor")
		mon, monHit, err := r.cfg.BuildMonitor(ctx, wfp, cn, v.monitorData, v.monitorOpts)
		monSpan.SetAttr("hit", monHit)
		monSpan.End()
		if err != nil {
			return nil, fmt.Errorf("monitor build: %w", err)
		}
		doc, err := vnn.MarshalMonitor(mon)
		if err != nil {
			return nil, fmt.Errorf("monitor marshal: %w", err)
		}
		r.mu.Lock()
		v.monitor, v.monitorFP, v.monitorDoc = mon, wfp, doc
		r.mu.Unlock()
	}

	// The compiled artifact attaches before the decision so even a
	// rejected version's dossier can be re-examined without recompiling,
	// and an admitted one promotes warm.
	r.mu.Lock()
	v.cn = cn
	gate := v.gate
	r.mu.Unlock()

	if gate == nil {
		w.decision = vnn.GateDecisionJSON{Pass: true}
		w.reason = "admitted without gate (none configured)"
		return w, nil
	}

	solveSpan := span.Child("solve")
	defer solveSpan.End()
	w.findings = make([]*vnn.Finding, 0, len(gate.Analyses))
	for i := range gate.Analyses {
		spec := &gate.Analyses[i]
		a, err := spec.Analysis()
		if err != nil {
			return nil, fmt.Errorf("analysis %d: %w", i, err)
		}
		if qs, ok := a.(*vnn.QuantSweep); ok {
			compile := r.cfg.Compile
			qs.Compile = func(ctx context.Context, fp string, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, error) {
				qcn, _, err := compile(ctx, fp, net, region, opts)
				return qcn, err
			}
		}
		runOpts := o.Opts
		runOpts.Tighten = v.tighten
		if p := o.Opts.Progress; p != nil {
			idx := i
			runOpts.Progress = func(ev vnn.Event) {
				ev.Analysis = idx
				p(ev)
			}
		}
		aSpan := solveSpan.Child("analysis:" + a.Kind())
		aSpan.SetAttr("analysis", i)
		f, err := vnn.AnalyzeOne(ctx, cn.WithOptions(runOpts), a)
		aSpan.End()
		if err != nil {
			return nil, fmt.Errorf("analysis %d (%s): %w", i, a.Kind(), err)
		}
		w.findings = append(w.findings, f)
	}
	w.decision = gate.Evaluate(w.findings)
	if w.decision.Pass {
		w.reason = fmt.Sprintf("gate passed (%d checks)", len(w.decision.Checks))
	} else {
		w.reason = "gate failed: " + w.decision.FailReason()
	}
	return w, nil
}
