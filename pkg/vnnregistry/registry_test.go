package vnnregistry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"repro/internal/nn"
	"repro/pkg/vnn"
)

// absNet is the |x1 − x2| network: over [0, 1]² its output lies in
// [0, 1], so "at_most 1.5" is provable and "at_most 0.5" is violated —
// a one-property gate in both polarities.
func absNet() *vnn.Network {
	return &nn.Network{Name: "absdiff", Layers: []*nn.Layer{
		{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

// scaledNet is absNet with the output doubled — a distinct fingerprint
// whose outputs are trivially distinguishable from absNet's.
func scaledNet() *vnn.Network {
	return &nn.Network{Name: "absdiff2", Layers: []*nn.Layer{
		{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{2, 2}}, B: []float64{0}, Act: nn.Identity},
	}}
}

func testConfig(dir string, compiles *atomic.Int64) Config {
	return Config{
		Dir: dir,
		Compile: func(ctx context.Context, fp string, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, bool, error) {
			if compiles != nil {
				compiles.Add(1)
			}
			cn, err := vnn.Compile(ctx, net, region, opts)
			return cn, false, err
		},
		BuildMonitor: func(ctx context.Context, wfp string, cn *vnn.CompiledNetwork, data [][]float64, opts vnn.MonitorOptions) (*vnn.Monitor, bool, error) {
			m, err := vnn.BuildMonitor(cn, data, opts)
			return m, false, err
		},
	}
}

func newReady(t *testing.T, cfg Config) *Registry {
	t.Helper()
	r := New(cfg)
	if r.Ready() {
		t.Fatal("registry ready before Recover")
	}
	if err := r.Recover(context.Background()); err != nil {
		t.Fatal(err)
	}
	if !r.Ready() || r.ReadyReason() != "" {
		t.Fatalf("not ready after Recover: %q", r.ReadyReason())
	}
	t.Cleanup(func() { r.Close() })
	return r
}

func submission(t *testing.T, model string, net *vnn.Network, gate *vnn.GateSpec) Submission {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	spec := vnn.RegionSpec{Box: [][2]float64{{0, 1}, {0, 1}}}
	region, err := spec.Region()
	if err != nil {
		t.Fatal(err)
	}
	fp, err := vnn.Fingerprint(net, region, vnn.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return Submission{
		Model: model, NetworkJSON: netJSON, Net: net, Region: region,
		RegionSpec: spec, Fingerprint: fp, Gate: gate,
	}
}

func gateSpec(t *testing.T, raw string) *vnn.GateSpec {
	t.Helper()
	g := new(vnn.GateSpec)
	if err := json.Unmarshal([]byte(raw), g); err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	return g
}

// admit submits and gates a version, requiring admission.
func admit(t *testing.T, r *Registry, sub Submission) *Version {
	t.Helper()
	v, err := r.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunGate(context.Background(), v, GateRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.State != string(StateAdmitted) {
		t.Fatalf("gate left version in state %s: %+v", res.Doc.State, res.Doc.Gate)
	}
	return v
}

func TestLifecyclePromoteRollback(t *testing.T) {
	r := newReady(t, testConfig("", nil))
	v1 := admit(t, r, submission(t, "m", absNet(), nil))

	// Canary with no live version is illegal: there is nothing to split
	// traffic with.
	if _, err := r.Promote("m", v1.Seq(), 25); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("canary without live: %v", err)
	}
	doc, err := r.Promote("m", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != string(StateLive) || doc.Version != 1 {
		t.Fatalf("promote: %+v", doc)
	}
	// Re-promoting the live version is a no-op error, not a new transition.
	if _, err := r.Promote("m", 1, 100); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("re-promote live: %v", err)
	}

	admit(t, r, submission(t, "m", scaledNet(), nil))
	doc, err = r.Promote("m", 2, 30)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != string(StateCanary) || doc.CanaryPercent != 30 {
		t.Fatalf("canary: %+v", doc)
	}
	// Full cutover retires v1 and remembers it as the rollback target.
	doc, err = r.Promote("m", 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if doc.State != string(StateLive) || doc.Version != 2 {
		t.Fatalf("cutover: %+v", doc)
	}
	md, err := r.Model("m")
	if err != nil {
		t.Fatal(err)
	}
	if md.Live != 2 || md.PreviousLive != 1 || md.Versions[0].State != string(StateRetired) {
		t.Fatalf("post-cutover doc: %+v", md)
	}

	// Rollback is symmetric: v1 serves again, v2 becomes the new target.
	doc, err = r.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 1 || doc.State != string(StateLive) {
		t.Fatalf("rollback: %+v", doc)
	}
	doc, err = r.Rollback("m")
	if err != nil {
		t.Fatal(err)
	}
	if doc.Version != 2 || doc.State != string(StateLive) {
		t.Fatalf("second rollback: %+v", doc)
	}

	// The audit history must record every step of the dance.
	md, _ = r.Model("m")
	var steps []string
	for _, tr := range md.Versions[0].Transitions {
		steps = append(steps, tr.To)
	}
	want := []string{"pending", "admitted", "live", "retired", "live", "retired"}
	if got := strings.Join(steps, ","); got != strings.Join(want, ",") {
		t.Fatalf("v1 history %s, want %s", got, strings.Join(want, ","))
	}
}

func TestGateRejectsViolatedProperty(t *testing.T) {
	r := newReady(t, testConfig("", nil))
	gate := gateSpec(t, `{"analyses":[{"kind":"verify","properties":[{"kind":"at_most","output":0,"threshold":0.5}]}]}`)
	v, err := r.Submit(submission(t, "m", absNet(), gate))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunGate(context.Background(), v, GateRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.State != string(StateRejected) {
		t.Fatalf("violated gate admitted the version: %+v", res.Doc)
	}
	if res.Doc.Gate == nil || res.Doc.Gate.Pass || res.Doc.Gate.FailReason() == "" {
		t.Fatalf("decision: %+v", res.Doc.Gate)
	}
	// A rejected version never routes; the model is known but unservable.
	if _, err := r.Resolve("m", [][]float64{{0.5, 0.5}}); !errors.Is(err, ErrNoServing) {
		t.Fatalf("resolve after rejection: %v", err)
	}
	// Rejected versions cannot be promoted around the gate.
	if _, err := r.Promote("m", v.Seq(), 100); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("promote rejected: %v", err)
	}
	// The gate cannot be re-run on a decided version.
	if _, err := r.RunGate(context.Background(), v, GateRunOptions{}); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("re-run gate: %v", err)
	}
}

func TestGateAdmitsProvedPropertyWithMonitor(t *testing.T) {
	r := newReady(t, testConfig("", nil))
	gate := gateSpec(t, `{"analyses":[
		{"kind":"verify","properties":[{"kind":"at_most","output":0,"threshold":1.5}]},
		{"kind":"monitor_audit","data":[[0.9,0.1],[0.1,0.9]],"gamma":0}],
		"max_flag_rate":1.0}`)
	sub := submission(t, "m", absNet(), gate)
	sub.MonitorData = [][]float64{{0.9, 0.1}, {0.1, 0.9}}
	v, err := r.Submit(sub)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.RunGate(context.Background(), v, GateRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Doc.State != string(StateAdmitted) {
		t.Fatalf("state %s: %+v", res.Doc.State, res.Doc.Gate)
	}
	if res.Doc.MonitorFingerprint == "" {
		t.Fatal("admitted version lost its serving monitor")
	}
	if len(res.Findings) != 2 {
		t.Fatalf("%d findings for a 2-analysis gate", len(res.Findings))
	}
	if _, err := r.Promote("m", 0, 100); err != nil {
		t.Fatal(err)
	}
	sv, err := r.Resolve("m", [][]float64{{0.9, 0.1}})
	if err != nil {
		t.Fatal(err)
	}
	if sv.Monitor == nil || sv.CN == nil || sv.Route != "live" {
		t.Fatalf("resolved version not warm: %+v", sv)
	}
}

func TestRouteHashDeterministic(t *testing.T) {
	a := [][]float64{{0.25, 0.75}, {1, 0}}
	if routeHash(a) != routeHash([][]float64{{0.25, 0.75}, {1, 0}}) {
		t.Fatal("identical inputs hash differently")
	}
	if routeHash(a) == routeHash([][]float64{{0.75, 0.25}, {1, 0}}) {
		t.Fatal("distinct inputs collide (content-insensitive hash)")
	}
}

func TestCanaryRoutingDeterministicAndMonotone(t *testing.T) {
	r := newReady(t, testConfig("", nil))
	admit(t, r, submission(t, "m", absNet(), nil))
	if _, err := r.Promote("m", 1, 100); err != nil {
		t.Fatal(err)
	}
	admit(t, r, submission(t, "m", scaledNet(), nil))
	if _, err := r.Promote("m", 2, 40); err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(7))
	inputs := make([][][]float64, 300)
	for i := range inputs {
		inputs[i] = [][]float64{{rng.Float64(), rng.Float64()}}
	}
	canaryAt40 := make(map[int]bool)
	for i, in := range inputs {
		first, err := r.Resolve("m", in)
		if err != nil {
			t.Fatal(err)
		}
		for rep := 0; rep < 3; rep++ {
			again, err := r.Resolve("m", in)
			if err != nil {
				t.Fatal(err)
			}
			if again.Version != first.Version || again.Route != first.Route {
				t.Fatalf("input %d: routing flapped between identical requests", i)
			}
		}
		canaryAt40[i] = first.Route == "canary"
	}
	var canaries int
	for _, c := range canaryAt40 {
		if c {
			canaries++
		}
	}
	// The share is a hash property, not a sampler: just require both
	// sides populated and the fraction in a generous band around 40%.
	if canaries < len(inputs)/5 || canaries > len(inputs)*3/5 {
		t.Fatalf("%d of %d requests routed to a 40%% canary", canaries, len(inputs))
	}

	// Growing the canary never moves a request off it: buckets below 40
	// are also below 80.
	if _, err := r.Promote("m", 2, 80); err != nil {
		t.Fatal(err)
	}
	for i, in := range inputs {
		sv, err := r.Resolve("m", in)
		if err != nil {
			t.Fatal(err)
		}
		if canaryAt40[i] && sv.Route != "canary" {
			t.Fatalf("input %d left the canary when its share grew", i)
		}
	}
}

func TestPersistenceRecovery(t *testing.T) {
	dir := t.TempDir()
	r1 := newReady(t, testConfig(dir, nil))
	admit(t, r1, submission(t, "m", absNet(), nil))
	if _, err := r1.Promote("m", 1, 100); err != nil {
		t.Fatal(err)
	}
	admit(t, r1, submission(t, "m", scaledNet(), nil))
	if _, err := r1.Promote("m", 2, 25); err != nil {
		t.Fatal(err)
	}
	// A third version is left pending: the "crash mid-gate" case.
	if _, err := r1.Submit(submission(t, "m", absNet(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := r1.Close(); err != nil {
		t.Fatal(err)
	}

	// The snapshot and audit log must both exist and be well-formed.
	raw, err := os.ReadFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		t.Fatal(err)
	}
	var snap snapshotJSON
	if err := json.Unmarshal(raw, &snap); err != nil {
		t.Fatal(err)
	}
	if snap.Schema != snapshotSchema || len(snap.Models) != 1 || len(snap.Models[0].Versions) != 3 {
		t.Fatalf("snapshot: schema %q, %d models", snap.Schema, len(snap.Models))
	}
	logRaw, err := os.ReadFile(filepath.Join(dir, transitionsLog))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(logRaw)), "\n")
	// 3 submissions + admit×2 + live + canary = 7 lifecycle steps.
	if len(lines) != 7 {
		t.Fatalf("%d transition-log lines, want 7:\n%s", len(lines), logRaw)
	}
	for _, line := range lines {
		var rec transitionRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("transition line %q: %v", line, err)
		}
	}

	var compiles atomic.Int64
	r2 := newReady(t, testConfig(dir, &compiles))
	md, err := r2.Model("m")
	if err != nil {
		t.Fatal(err)
	}
	if md.Live != 1 || md.Canary != 2 || md.CanaryPercent != 25 {
		t.Fatalf("recovered routing: %+v", md)
	}
	v3 := md.Versions[2]
	if v3.State != string(StateRejected) || !strings.Contains(v3.GateError, "interrupted") {
		t.Fatalf("interrupted pending version recovered as %q (%q)", v3.State, v3.GateError)
	}
	// Only the routable versions recompile; the interrupted one is dead.
	if n := compiles.Load(); n != 2 {
		t.Fatalf("recovery ran %d compiles, want 2", n)
	}
	if _, err := r2.Resolve("m", [][]float64{{0.3, 0.7}}); err != nil {
		t.Fatal(err)
	}
}

func TestNotReadyBeforeRecover(t *testing.T) {
	r := New(testConfig("", nil))
	if _, err := r.Submit(submission(t, "m", absNet(), nil)); !errors.Is(err, ErrNotReady) {
		t.Fatalf("submit before recover: %v", err)
	}
	if _, err := r.Resolve("m", [][]float64{{0, 0}}); !errors.Is(err, ErrNotReady) {
		t.Fatalf("resolve before recover: %v", err)
	}
	if _, err := r.Promote("m", 0, 100); !errors.Is(err, ErrNotReady) {
		t.Fatalf("promote before recover: %v", err)
	}
	if reason := r.ReadyReason(); !strings.Contains(reason, "in progress") {
		t.Fatalf("ready reason %q", reason)
	}
}

func TestRecoverFailureParksNotReady(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, snapshotFile), []byte(`{"schema":"bogus/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	r := New(testConfig(dir, nil))
	if err := r.Recover(context.Background()); err == nil {
		t.Fatal("recover accepted a foreign schema")
	}
	if r.Ready() {
		t.Fatal("registry ready after failed recovery")
	}
	if reason := r.ReadyReason(); !strings.Contains(reason, "recovery failed") {
		t.Fatalf("ready reason %q", reason)
	}
}

func TestResolveErrors(t *testing.T) {
	r := newReady(t, testConfig("", nil))
	if _, err := r.Resolve("ghost", [][]float64{{0, 0}}); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("unknown model: %v", err)
	}
	if _, err := r.Submit(submission(t, "m", absNet(), nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := r.Resolve("m", [][]float64{{0, 0}}); !errors.Is(err, ErrNoServing) {
		t.Fatalf("pending-only model: %v", err)
	}
	if _, err := r.Rollback("m"); !errors.Is(err, ErrBadTransition) {
		t.Fatalf("rollback without live: %v", err)
	}
	if _, err := r.Promote("m", 9, 100); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unknown version: %v", err)
	}
	if _, err := r.Promote("m", 1, 101); err == nil {
		t.Fatal("promote accepted canary_percent 101")
	}
}

// TestCountServeTenant pins the per-tenant per-version accounting: the
// version totals stay the sum over tenants, labels past the cap fold
// into "other", and empty labels count only the totals.
func TestCountServeTenant(t *testing.T) {
	v := &Version{model: "m", seq: 1}
	v.CountServeTenant("acme", 4, 1)
	v.CountServeTenant("acme", 2, 0)
	v.CountServeTenant("beta", 1, 1)
	v.CountServeTenant("", 5, 0) // unattributed: totals only

	if got := v.requests.Load(); got != 4 {
		t.Fatalf("requests = %d, want 4", got)
	}
	tc := v.tenantCounters()
	if len(tc) != 2 {
		t.Fatalf("tenant labels = %d (%v), want 2", len(tc), tc)
	}
	if acme := tc["acme"]; acme.Requests != 2 || acme.Inputs != 6 || acme.Flagged != 1 {
		t.Fatalf("acme counters = %+v", acme)
	}

	// Overflow: labels past the cap land on "other".
	for i := 0; i < maxVersionTenants+10; i++ {
		v.CountServeTenant(fmt.Sprintf("t%03d", i), 1, 0)
	}
	tc = v.tenantCounters()
	if len(tc) > maxVersionTenants+1 {
		t.Fatalf("tenant labels = %d, want <= cap+1 = %d", len(tc), maxVersionTenants+1)
	}
	var reqs int64
	for _, sc := range tc {
		reqs = reqs + sc.Requests
	}
	if reqs != v.requests.Load()-1 { // the one empty-label request has no row
		t.Fatalf("tenant-attributed requests = %d, want %d", reqs, v.requests.Load()-1)
	}
	if tc[overflowTenant].Requests == 0 {
		t.Fatal("overflow tenant absorbed nothing")
	}
}
