// Package vnnregistry is vnnd's verified-rollout plane: a versioned model
// registry where every version must pass a certification gate — the
// paper's dependability portfolio run as an admission control — before it
// can take traffic. The registry owns the model lifecycle
//
//	pending → (gate) → admitted → canary(p%) → live → retired
//	                 ↘ rejected
//
// and serves it through a single atomically-swapped route table, so
// cutover and rollback are one pointer store: the previous version's
// compiled artifact and monitor stay warm in memory, making rollback a
// route change rather than a recompile. State persists as a JSON snapshot
// plus an append-only transition log (see persist.go) so a daemon restart
// recovers the serving table.
//
// The package is deliberately engine-agnostic glue: compiles and monitor
// builds are injected (the server wires its fingerprint-keyed
// singleflight cache in), and the gate decision logic lives on
// vnn.GateSpec where every other wire shape lives.
package vnnregistry

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/vnn"
)

// Version lifecycle states, as persisted and spoken on the wire.
type State string

const (
	// StatePending: submitted, gate not yet decided. Never routes.
	StatePending State = "pending"
	// StateRejected: gate failed or errored. Terminal; never routes.
	StateRejected State = "rejected"
	// StateAdmitted: gate passed; eligible for canary/promotion.
	StateAdmitted State = "admitted"
	// StateCanary: serving a deterministic hash-selected traffic share.
	StateCanary State = "canary"
	// StateLive: the model's primary serving version.
	StateLive State = "live"
	// StateRetired: previously live, kept warm for one-RTT rollback.
	StateRetired State = "retired"
)

// Sentinel errors the HTTP layer maps to status codes.
var (
	// ErrNotReady: the registry has not finished (or failed) recovery.
	ErrNotReady = errors.New("vnnregistry: registry not ready")
	// ErrUnknownModel: no model registered under that name.
	ErrUnknownModel = errors.New("vnnregistry: unknown model")
	// ErrUnknownVersion: the model has no such version.
	ErrUnknownVersion = errors.New("vnnregistry: unknown version")
	// ErrNoServing: the model exists but has no live or canary version.
	ErrNoServing = errors.New("vnnregistry: model has no serving version")
	// ErrBadTransition: the requested lifecycle change is illegal from
	// the version's current state.
	ErrBadTransition = errors.New("vnnregistry: illegal transition")
)

// CompileFunc produces (or cache-hits) the compiled artifact for a
// fingerprinted workload. The server injects its singleflight LRU here so
// gate runs, recovery and /v1/analyze all share one compile per workload.
type CompileFunc func(ctx context.Context, fingerprint string, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, bool, error)

// BuildMonitorFunc produces (or cache-hits) the serving monitor for a
// monitor-workload fingerprint.
type BuildMonitorFunc func(ctx context.Context, workloadFingerprint string, cn *vnn.CompiledNetwork, data [][]float64, opts vnn.MonitorOptions) (*vnn.Monitor, bool, error)

// Config wires a Registry into its host.
type Config struct {
	// Dir is the persistence directory (-data-dir); "" disables
	// persistence (state lives for the process only).
	Dir string
	// Compile builds serving/gate artifacts; required.
	Compile CompileFunc
	// BuildMonitor builds serving monitors; required when submissions
	// carry monitor workloads.
	BuildMonitor BuildMonitorFunc
	// ImportMonitor, when set, is offered every monitor reconstructed
	// during recovery so the host can prime its own serving caches.
	ImportMonitor func(*vnn.Monitor)
	// Logf receives recovery/persistence diagnostics; nil discards.
	Logf func(format string, args ...any)
}

// Version is one registered model version. Identity and lifecycle fields
// are guarded by the registry lock; the compiled artifact and monitor are
// written only before the version is published into a route table, and the
// serving counters are atomic — so the infer hot path reads a resolved
// version without locks.
type Version struct {
	model string
	seq   int

	state         State
	fingerprint   string
	networkJSON   json.RawMessage
	regionSpec    vnn.RegionSpec
	tighten       bool
	workers       int
	gate          *vnn.GateSpec
	decision      *vnn.GateDecisionJSON
	gateErr       string
	canaryPercent int
	submitted     time.Time
	transitions   []vnn.TransitionJSON

	monitorData [][]float64 // gate-time build input; not persisted
	monitorOpts vnn.MonitorOptions
	monitorDoc  json.RawMessage // marshaled monitor, persisted for recovery
	monitorFP   string

	jobID string // gate job id (trace id); process-local

	net     *vnn.Network
	region  *vnn.Region
	cn      *vnn.CompiledNetwork
	monitor *vnn.Monitor

	requests atomic.Int64
	inputs   atomic.Int64
	flagged  atomic.Int64

	// tenantMu guards tenants: per-tenant serving counters, capped at
	// maxVersionTenants labels (overflow folds into "other"). The caller
	// passes already-capped labels (vnnserver derives them through
	// internal/obs's TenantSet), so the cap here is defense in depth for
	// library users, not the primary guard.
	tenantMu sync.Mutex
	tenants  map[string]*ServeCounters
}

// maxVersionTenants bounds the per-version tenant label space.
const maxVersionTenants = 64

// overflowTenant absorbs serving counts past the per-version cap.
const overflowTenant = "other"

// ServeCounters is one tenant's cumulative serving volume against one
// model version.
type ServeCounters struct {
	Requests int64 `json:"requests"`
	Inputs   int64 `json:"inputs"`
	Flagged  int64 `json:"flagged"`
}

// Model returns the owning model name.
func (v *Version) Model() string { return v.model }

// Seq returns the 1-based version number within its model.
func (v *Version) Seq() int { return v.seq }

// Fingerprint returns the compile-workload fingerprint.
func (v *Version) Fingerprint() string { return v.fingerprint }

// CountServe records one served inference request against the version.
func (v *Version) CountServe(inputs, flagged int) {
	v.requests.Add(1)
	v.inputs.Add(int64(inputs))
	v.flagged.Add(int64(flagged))
}

// CountServeTenant records one served inference request against the
// version, attributed to a tenant label. Empty labels count only the
// version totals.
func (v *Version) CountServeTenant(tenant string, inputs, flagged int) {
	v.CountServe(inputs, flagged)
	if tenant == "" {
		return
	}
	v.tenantMu.Lock()
	defer v.tenantMu.Unlock()
	if v.tenants == nil {
		v.tenants = make(map[string]*ServeCounters)
	}
	sc, ok := v.tenants[tenant]
	if !ok {
		if len(v.tenants) >= maxVersionTenants {
			tenant = overflowTenant
		}
		sc = v.tenants[tenant]
		if sc == nil {
			sc = &ServeCounters{}
			v.tenants[tenant] = sc
		}
	}
	sc.Requests++
	sc.Inputs += int64(inputs)
	sc.Flagged += int64(flagged)
}

// tenantCounters snapshots the per-tenant serving counters (nil when
// the version never served attributed traffic).
func (v *Version) tenantCounters() map[string]ServeCounters {
	v.tenantMu.Lock()
	defer v.tenantMu.Unlock()
	if len(v.tenants) == 0 {
		return nil
	}
	out := make(map[string]ServeCounters, len(v.tenants))
	for t, sc := range v.tenants {
		out[t] = *sc
	}
	return out
}

// model groups a name's versions plus the one-step rollback pointer.
type model struct {
	name     string
	versions []*Version
	prevLive int // seq retired from live at the last cutover; 0 none
}

func (m *model) version(seq int) (*Version, bool) {
	if seq < 1 || seq > len(m.versions) {
		return nil, false
	}
	return m.versions[seq-1], true
}

func (m *model) live() *Version {
	for _, v := range m.versions {
		if v.state == StateLive {
			return v
		}
	}
	return nil
}

func (m *model) canary() *Version {
	for _, v := range m.versions {
		if v.state == StateCanary {
			return v
		}
	}
	return nil
}

// route is one model's serving entry in the immutable route table.
type route struct {
	live      *Version
	canary    *Version
	canaryPct int
}

// routeTable is the atomically-published serving state: one immutable map
// built under the registry lock, installed with a single pointer store.
type routeTable struct {
	models map[string]*route
}

// Registry is the verified-rollout control plane. All lifecycle mutations
// run under mu and republish the route table; serving reads only the
// atomic table pointer.
type Registry struct {
	cfg Config

	mu     sync.Mutex
	models map[string]*model

	routes atomic.Pointer[routeTable]

	ready      atomic.Bool
	readyErr   atomic.Pointer[string]
	recovering atomic.Bool

	persist persister
}

// New creates a registry. Snapshot loading is deferred to Recover so the
// host can boot its HTTP surface immediately and report readiness honestly
// (see /readyz); until Recover completes, serving and mutations fail with
// ErrNotReady.
func New(cfg Config) *Registry {
	r := &Registry{cfg: cfg, models: make(map[string]*model)}
	r.persist.dir = cfg.Dir
	r.persist.logf = r.logf
	r.recovering.Store(true)
	return r
}

// Ready reports whether recovery completed and the route table serves.
func (r *Registry) Ready() bool { return r.ready.Load() }

// ReadyReason returns "" when ready, else why not (recovering, or a
// recovery failure message).
func (r *Registry) ReadyReason() string {
	if r.ready.Load() {
		return ""
	}
	if msg := r.readyErr.Load(); msg != nil {
		return "registry recovery failed: " + *msg
	}
	return "registry recovery in progress"
}

// Close releases the transition log handle.
func (r *Registry) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.persist.close()
}

func (r *Registry) logf(format string, args ...any) {
	if r.cfg.Logf != nil {
		r.cfg.Logf(format, args...)
	}
}

// Submission is a validated POST /v1/models body, parsed by the host into
// engine values. The registry records it as a pending version; the gate
// decides its fate asynchronously (RunGate).
type Submission struct {
	Model       string
	NetworkJSON json.RawMessage
	Net         *vnn.Network
	Region      *vnn.Region
	RegionSpec  vnn.RegionSpec
	Fingerprint string
	Tighten     bool
	Workers     int
	Gate        *vnn.GateSpec // nil admits without analysis (ungated)
	MonitorData [][]float64
	MonitorOpts vnn.MonitorOptions
}

// Submit registers a new pending version of sub.Model (creating the model
// on first submission) and persists the snapshot so a crash mid-gate is
// recovered as a rejected version, never a silently lost one.
func (r *Registry) Submit(sub Submission) (*Version, error) {
	if !r.ready.Load() {
		return nil, ErrNotReady
	}
	if sub.Model == "" {
		return nil, fmt.Errorf("vnnregistry: submission needs a model name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[sub.Model]
	if m == nil {
		m = &model{name: sub.Model}
		r.models[sub.Model] = m
	}
	v := &Version{
		model:       sub.Model,
		seq:         len(m.versions) + 1,
		state:       StatePending,
		fingerprint: sub.Fingerprint,
		networkJSON: sub.NetworkJSON,
		regionSpec:  sub.RegionSpec,
		tighten:     sub.Tighten,
		workers:     sub.Workers,
		gate:        sub.Gate,
		monitorData: sub.MonitorData,
		monitorOpts: sub.MonitorOpts,
		submitted:   time.Now(),
		net:         sub.Net,
		region:      sub.Region,
	}
	m.versions = append(m.versions, v)
	v.transitions = []vnn.TransitionJSON{{To: string(StatePending), Reason: "submitted", AtUnixMS: v.submitted.UnixMilli()}}
	r.persist.appendTransition(transitionRecord{
		AtUnixMS: v.submitted.UnixMilli(), Model: v.model, Version: v.seq,
		From: "", To: string(StatePending), Reason: "submitted",
	})
	r.saveLocked()
	return v, nil
}

// SetGateJob records the job/trace id of the version's gate run.
func (r *Registry) SetGateJob(v *Version, jobID string) {
	r.mu.Lock()
	v.jobID = jobID
	r.mu.Unlock()
}

// GateJob returns the gate job id for a model version.
func (r *Registry) GateJob(name string, seq int) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return "", ErrUnknownModel
	}
	v, ok := m.version(seq)
	if !ok {
		return "", ErrUnknownVersion
	}
	if v.jobID == "" {
		return "", fmt.Errorf("%w: version %d has no gate run this process", ErrUnknownVersion, seq)
	}
	return v.jobID, nil
}

// transition moves a version to a new state, records the step in the
// version history and the append-only log. Callers hold r.mu.
func (r *Registry) transitionLocked(v *Version, to State, reason string) {
	now := time.Now()
	v.transitions = append(v.transitions, vnn.TransitionJSON{
		From: string(v.state), To: string(to), Reason: reason, AtUnixMS: now.UnixMilli(),
	})
	r.persist.appendTransition(transitionRecord{
		AtUnixMS: now.UnixMilli(), Model: v.model, Version: v.seq,
		From: string(v.state), To: string(to), Reason: reason,
	})
	v.state = to
}

// rebuildRoutesLocked republishes the serving table from current states.
func (r *Registry) rebuildRoutesLocked() {
	t := &routeTable{models: make(map[string]*route, len(r.models))}
	for name, m := range r.models {
		rt := &route{live: m.live(), canary: m.canary()}
		if rt.canary != nil {
			rt.canaryPct = rt.canary.canaryPercent
		}
		if rt.live != nil || rt.canary != nil {
			t.models[name] = rt
		}
	}
	r.routes.Store(t)
}

// Promote moves a version toward traffic. seq 0 targets the newest
// admitted-or-canary version. canaryPct in [1, 99] starts (or resizes) a
// canary against the current live version; 0 or 100 performs the full
// cutover — the previous live version retires but stays warm, becoming the
// one-RTT rollback target.
func (r *Registry) Promote(name string, seq, canaryPct int) (vnn.ModelVersionJSON, error) {
	if !r.ready.Load() {
		return vnn.ModelVersionJSON{}, ErrNotReady
	}
	if canaryPct < 0 || canaryPct > 100 {
		return vnn.ModelVersionJSON{}, fmt.Errorf("vnnregistry: canary_percent %d outside [0, 100]", canaryPct)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return vnn.ModelVersionJSON{}, ErrUnknownModel
	}
	var v *Version
	if seq > 0 {
		var ok bool
		if v, ok = m.version(seq); !ok {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: %s has no version %d", ErrUnknownVersion, name, seq)
		}
	} else {
		for i := len(m.versions) - 1; i >= 0; i-- {
			if s := m.versions[i].state; s == StateAdmitted || s == StateCanary {
				v = m.versions[i]
				break
			}
		}
		if v == nil {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: %s has no admitted version to promote", ErrBadTransition, name)
		}
	}
	live := m.live()
	if canaryPct >= 1 && canaryPct <= 99 {
		if v.state != StateAdmitted && v.state != StateCanary {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: cannot canary version %d in state %s", ErrBadTransition, v.seq, v.state)
		}
		if live == nil {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: %s has no live version to canary against; promote to live", ErrBadTransition, name)
		}
		if live == v {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: version %d is already live", ErrBadTransition, v.seq)
		}
		if c := m.canary(); c != nil && c != v {
			r.transitionLocked(c, StateAdmitted, fmt.Sprintf("superseded by canary v%d", v.seq))
		}
		v.canaryPercent = canaryPct
		if v.state == StateCanary {
			r.transitionLocked(v, StateCanary, fmt.Sprintf("canary resized to %d%%", canaryPct))
		} else {
			r.transitionLocked(v, StateCanary, fmt.Sprintf("canary at %d%%", canaryPct))
		}
	} else { // full cutover
		switch v.state {
		case StateAdmitted, StateCanary, StateRetired:
		default:
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: cannot promote version %d in state %s", ErrBadTransition, v.seq, v.state)
		}
		if live == v {
			return vnn.ModelVersionJSON{}, fmt.Errorf("%w: version %d is already live", ErrBadTransition, v.seq)
		}
		if c := m.canary(); c != nil && c != v {
			r.transitionLocked(c, StateAdmitted, fmt.Sprintf("superseded by cutover to v%d", v.seq))
		}
		if live != nil {
			r.transitionLocked(live, StateRetired, fmt.Sprintf("superseded by v%d", v.seq))
			m.prevLive = live.seq
		}
		v.canaryPercent = 0
		r.transitionLocked(v, StateLive, "promoted to live")
	}
	r.rebuildRoutesLocked()
	r.saveLocked()
	return r.docLocked(v), nil
}

// Rollback swaps the model back to the version retired at the last
// cutover. Both artifacts are warm, so the swap is one route-table store —
// no recompile, no gate re-run (the retired version's certification still
// stands). An in-flight canary is demoted back to admitted.
func (r *Registry) Rollback(name string) (vnn.ModelVersionJSON, error) {
	if !r.ready.Load() {
		return vnn.ModelVersionJSON{}, ErrNotReady
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return vnn.ModelVersionJSON{}, ErrUnknownModel
	}
	live := m.live()
	if live == nil {
		return vnn.ModelVersionJSON{}, fmt.Errorf("%w: %s has no live version", ErrBadTransition, name)
	}
	prev, ok := m.version(m.prevLive)
	if !ok || prev.state != StateRetired {
		return vnn.ModelVersionJSON{}, fmt.Errorf("%w: %s has no retired previous version to roll back to", ErrBadTransition, name)
	}
	if c := m.canary(); c != nil {
		r.transitionLocked(c, StateAdmitted, "rollback")
	}
	r.transitionLocked(live, StateRetired, fmt.Sprintf("rolled back to v%d", prev.seq))
	r.transitionLocked(prev, StateLive, "rollback")
	m.prevLive = live.seq
	r.rebuildRoutesLocked()
	r.saveLocked()
	return r.docLocked(prev), nil
}

// Resolved is a routing decision for one inference request: the version to
// serve and its warm artifacts, readable without locks.
type Resolved struct {
	Version *Version
	// Route is "live" or "canary".
	Route   string
	CN      *vnn.CompiledNetwork
	Monitor *vnn.Monitor
}

// Resolve routes one inference request for a named model. Canary selection
// is deterministic: a 64-bit FNV-1a hash over the IEEE-754 bits of every
// input, reduced mod 100 and compared against the canary share — the same
// request body always lands on the same version at a fixed fraction, and a
// request stays on its version as the fraction only grows past its bucket.
func (r *Registry) Resolve(name string, inputs [][]float64) (*Resolved, error) {
	if !r.ready.Load() {
		return nil, ErrNotReady
	}
	t := r.routes.Load()
	if t == nil {
		return nil, ErrNotReady
	}
	rt := t.models[name]
	if rt == nil {
		r.mu.Lock()
		_, known := r.models[name]
		r.mu.Unlock()
		if known {
			return nil, ErrNoServing
		}
		return nil, ErrUnknownModel
	}
	if rt.canary != nil && int(routeHash(inputs)%100) < rt.canaryPct {
		return &Resolved{Version: rt.canary, Route: "canary", CN: rt.canary.cn, Monitor: rt.canary.monitor}, nil
	}
	if rt.live == nil {
		return nil, ErrNoServing
	}
	return &Resolved{Version: rt.live, Route: "live", CN: rt.live.cn, Monitor: rt.live.monitor}, nil
}

// routeHash folds every input's IEEE-754 bit pattern through 64-bit
// FNV-1a. Hashing value bits (not a text rendering) makes routing
// insensitive to JSON formatting while staying bit-exact on content.
func routeHash(inputs [][]float64) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, row := range inputs {
		for _, x := range row {
			b := math.Float64bits(x)
			for s := 0; s < 64; s += 8 {
				h ^= (b >> s) & 0xff
				h *= prime64
			}
		}
	}
	return h
}

// docLocked renders a version's wire document. Callers hold r.mu.
func (r *Registry) docLocked(v *Version) vnn.ModelVersionJSON {
	doc := vnn.ModelVersionJSON{
		Model:              v.model,
		Version:            v.seq,
		State:              string(v.state),
		Fingerprint:        v.fingerprint,
		MonitorFingerprint: v.monitorFP,
		Gate:               v.decision,
		GateError:          v.gateErr,
		SubmittedUnixMS:    v.submitted.UnixMilli(),
		Transitions:        append([]vnn.TransitionJSON(nil), v.transitions...),
		Requests:           v.requests.Load(),
		Inputs:             v.inputs.Load(),
		Flagged:            v.flagged.Load(),
	}
	if v.state == StateCanary {
		doc.CanaryPercent = v.canaryPercent
	}
	return doc
}

// Doc renders one version's wire document.
func (r *Registry) Doc(v *Version) vnn.ModelVersionJSON {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.docLocked(v)
}

// ModelDoc is the wire document for one model: its routing plus every
// version.
type ModelDoc struct {
	Model         string                 `json:"model"`
	Live          int                    `json:"live,omitempty"`
	Canary        int                    `json:"canary,omitempty"`
	CanaryPercent int                    `json:"canary_percent,omitempty"`
	PreviousLive  int                    `json:"previous_live,omitempty"`
	Versions      []vnn.ModelVersionJSON `json:"versions"`
}

func (r *Registry) modelDocLocked(m *model) ModelDoc {
	doc := ModelDoc{Model: m.name, PreviousLive: m.prevLive}
	if v := m.live(); v != nil {
		doc.Live = v.seq
	}
	if v := m.canary(); v != nil {
		doc.Canary = v.seq
		doc.CanaryPercent = v.canaryPercent
	}
	for _, v := range m.versions {
		doc.Versions = append(doc.Versions, r.docLocked(v))
	}
	return doc
}

// Model returns one model's document.
func (r *Registry) Model(name string) (ModelDoc, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return ModelDoc{}, ErrUnknownModel
	}
	return r.modelDocLocked(m), nil
}

// Models returns every model's document, sorted by name.
func (r *Registry) Models() []ModelDoc {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	sort.Strings(names)
	docs := make([]ModelDoc, 0, len(names))
	for _, name := range names {
		docs = append(docs, r.modelDocLocked(r.models[name]))
	}
	return docs
}

// FindVersion returns a version by model name and sequence number.
func (r *Registry) FindVersion(name string, seq int) (*Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.models[name]
	if m == nil {
		return nil, ErrUnknownModel
	}
	v, ok := m.version(seq)
	if !ok {
		return nil, fmt.Errorf("%w: %s has no version %d", ErrUnknownVersion, name, seq)
	}
	return v, nil
}

// VersionMetric is the per-version slice of the registry's metrics block:
// rollout state plus serving/monitor counters.
type VersionMetric struct {
	Model         string `json:"model"`
	Version       int    `json:"version"`
	State         string `json:"state"`
	Fingerprint   string `json:"fingerprint"`
	CanaryPercent int    `json:"canary_percent,omitempty"`
	Requests      int64  `json:"requests"`
	Inputs        int64  `json:"inputs"`
	Flagged       int64  `json:"flagged"`
	// Tenants breaks the serving counters down by tenant label (absent
	// until the version serves attributed traffic; label space capped —
	// see CountServeTenant).
	Tenants map[string]ServeCounters `json:"tenants,omitempty"`
}

// Metrics summarizes the registry for /metrics: readiness, totals by
// state, and one row per version (model-name then version order).
type Metrics struct {
	Ready    bool            `json:"ready"`
	Models   int             `json:"models"`
	ByState  map[string]int  `json:"by_state"`
	Versions []VersionMetric `json:"versions"`
}

// Snapshot renders the registry metrics block.
func (r *Registry) Snapshot() Metrics {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := Metrics{Ready: r.ready.Load(), Models: len(r.models), ByState: make(map[string]int)}
	names := make([]string, 0, len(r.models))
	for name := range r.models {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		for _, v := range r.models[name].versions {
			m.ByState[string(v.state)]++
			vm := VersionMetric{
				Model:       v.model,
				Version:     v.seq,
				State:       string(v.state),
				Fingerprint: v.fingerprint,
				Requests:    v.requests.Load(),
				Inputs:      v.inputs.Load(),
				Flagged:     v.flagged.Load(),
				Tenants:     v.tenantCounters(),
			}
			if v.state == StateCanary {
				vm.CanaryPercent = v.canaryPercent
			}
			m.Versions = append(m.Versions, vm)
		}
	}
	return m
}
