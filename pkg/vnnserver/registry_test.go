package vnnserver_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"testing"
	"time"

	"repro/internal/nn"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// rolloutNet is |x1 − x2|: output in [0, 1] over the unit box, so a gate
// threshold of 1.5 proves and 0.5 violates.
func rolloutNet() *nn.Network {
	return &nn.Network{Name: "absdiff", Layers: []*nn.Layer{
		{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
}

// rolloutNetV2 doubles the output — a successor version whose answers are
// trivially distinguishable from rolloutNet's.
func rolloutNetV2() *nn.Network {
	return &nn.Network{Name: "absdiff2", Layers: []*nn.Layer{
		{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{2, 2}}, B: []float64{0}, Act: nn.Identity},
	}}
}

// waitRegistryReady blocks until the server's registry finished its
// (asynchronous) recovery.
func waitRegistryReady(t *testing.T, srv *vnnserver.Server) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !srv.Registry().Ready() {
		if time.Now().After(deadline) {
			t.Fatalf("registry never became ready: %s", srv.Registry().ReadyReason())
		}
		time.Sleep(time.Millisecond)
	}
}

func gateAtMost(threshold float64) *vnn.GateSpec {
	return &vnn.GateSpec{Analyses: []vnn.AnalysisSpec{{
		Kind:       vnn.KindVerify,
		Properties: []vnn.PropertySpec{{Kind: "at_most", Output: new(int), Threshold: &threshold}},
	}}}
}

// submitModel posts a synchronous model submission and returns the
// decided document.
func submitModel(t *testing.T, url, model string, net *nn.Network, gate *vnn.GateSpec, mon *vnnserver.InferMonitorSpec) vnnserver.ModelSubmitResponse {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	wait := true
	body, err := json.Marshal(vnnserver.ModelSubmitRequest{
		Model:   model,
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: [][2]float64{{0, 1}, {0, 1}}},
		Options: vnnserver.QueryOptions{Workers: 1},
		Monitor: mon,
		Gate:    gate,
		Wait:    &wait,
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out vnnserver.ModelSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit %s: status %d (%+v)", model, resp.StatusCode, out)
	}
	return out
}

func promoteModel(t *testing.T, url, model string, body string) vnnserver.ModelSubmitResponse {
	t.Helper()
	resp, err := http.Post(url+"/v1/models/"+model+"/promote", "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out vnnserver.ModelSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("promote %s: status %d (%+v)", model, resp.StatusCode, out)
	}
	return out
}

func modelInfer(t *testing.T, url, model string, inputs [][]float64, out *vnnserver.InferResponse) int {
	t.Helper()
	body, err := json.Marshal(vnnserver.InferRequest{Model: model, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

// TestModelRolloutEndToEnd is the acceptance test of the verified-rollout
// plane: a gate-failing version is rejected and takes no traffic; a
// passing one promotes; a successor canaries deterministically, cuts
// over, and rolls back to bit-identical serving without a single new
// compile.
func TestModelRolloutEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	waitRegistryReady(t, srv)

	// A version whose gate is violated is rejected and never serves.
	rej := submitModel(t, ts.URL, "demo", rolloutNet(), gateAtMost(0.5), nil)
	if rej.State != "rejected" {
		t.Fatalf("violated gate produced state %q", rej.State)
	}
	if rej.Gate == nil || rej.Gate.Pass {
		t.Fatalf("gate decision: %+v", rej.Gate)
	}
	if status := modelInfer(t, ts.URL, "demo", [][]float64{{0.5, 0.5}}, nil); status != http.StatusConflict {
		t.Fatalf("rejected-only model served with status %d, want 409", status)
	}

	// A passing version (with a serving monitor) admits and promotes.
	mon := &vnnserver.InferMonitorSpec{Data: [][]float64{{0.9, 0.1}, {0.1, 0.9}}, Gamma: 0}
	adm := submitModel(t, ts.URL, "demo", rolloutNet(), gateAtMost(1.5), mon)
	if adm.State != "admitted" || adm.Version != 2 {
		t.Fatalf("passing gate: %+v", adm.ModelVersionJSON)
	}
	if adm.Report == nil || len(adm.Report.Analyses) == 0 {
		t.Fatal("submit response carries no gate report")
	}
	promoteModel(t, ts.URL, "demo", `{}`)

	var v2 vnnserver.InferResponse
	if status := modelInfer(t, ts.URL, "demo", [][]float64{{0.9, 0.1}}, &v2); status != http.StatusOK {
		t.Fatalf("live infer status %d", status)
	}
	if v2.Model != "demo" || v2.ModelVersion != 2 || v2.Route != "live" {
		t.Fatalf("serving attribution: %+v", v2)
	}
	if len(v2.Outputs) != 1 || v2.Outputs[0][0] != 0.8 {
		t.Fatalf("v2 output %v, want [[0.8]]", v2.Outputs)
	}
	if len(v2.Verdicts) != 1 {
		t.Fatal("monitored model version returned no verdicts")
	}

	// Successor canaries at 50%: routing is a deterministic function of
	// the input bits, stable across repeats.
	adm3 := submitModel(t, ts.URL, "demo", rolloutNetV2(), gateAtMost(2.5), nil)
	if adm3.State != "admitted" || adm3.Version != 3 {
		t.Fatalf("v3 gate: %+v", adm3.ModelVersionJSON)
	}
	can := promoteModel(t, ts.URL, "demo", `{"canary_percent": 50}`)
	if can.State != "canary" || can.CanaryPercent != 50 {
		t.Fatalf("canary: %+v", can.ModelVersionJSON)
	}
	routed := make(map[int]int) // version → count
	versionFor := make([]int, 40)
	for i := range versionFor {
		in := [][]float64{{float64(i) / 40, 0.5}}
		var ir vnnserver.InferResponse
		if status := modelInfer(t, ts.URL, "demo", in, &ir); status != http.StatusOK {
			t.Fatalf("canary infer %d: status %d", i, status)
		}
		versionFor[i] = ir.ModelVersion
		routed[ir.ModelVersion]++
		var again vnnserver.InferResponse
		if status := modelInfer(t, ts.URL, "demo", in, &again); status != http.StatusOK {
			t.Fatalf("canary re-infer %d: status %d", i, status)
		}
		if again.ModelVersion != ir.ModelVersion || again.Route != ir.Route {
			t.Fatalf("input %d: canary routing flapped (%d/%s then %d/%s)",
				i, ir.ModelVersion, ir.Route, again.ModelVersion, again.Route)
		}
	}
	if routed[2] == 0 || routed[3] == 0 {
		t.Fatalf("50%% canary routed everything one way: %v", routed)
	}

	// Full cutover, then one-RTT rollback: v2 serves again bit-identically
	// with zero new compiles — both artifacts were warm all along.
	promoteModel(t, ts.URL, "demo", `{}`)
	var v3 vnnserver.InferResponse
	if status := modelInfer(t, ts.URL, "demo", [][]float64{{0.9, 0.1}}, &v3); status != http.StatusOK {
		t.Fatalf("post-cutover infer status %d", status)
	}
	if v3.ModelVersion != 3 || v3.Outputs[0][0] != 1.6 {
		t.Fatalf("post-cutover serving: version %d outputs %v", v3.ModelVersion, v3.Outputs)
	}

	compilesBefore := vnn.CompileCalls()
	resp, err := http.Post(ts.URL+"/v1/models/demo/rollback", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	var rb vnnserver.ModelSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || rb.Version != 2 || rb.State != "live" {
		t.Fatalf("rollback: status %d, %+v", resp.StatusCode, rb.ModelVersionJSON)
	}
	var back vnnserver.InferResponse
	if status := modelInfer(t, ts.URL, "demo", [][]float64{{0.9, 0.1}}, &back); status != http.StatusOK {
		t.Fatalf("post-rollback infer status %d", status)
	}
	if back.ModelVersion != 2 || back.Outputs[0][0] != v2.Outputs[0][0] { // bit-identical
		t.Fatalf("rollback serving: version %d outputs %v, want v2's %v",
			back.ModelVersion, back.Outputs, v2.Outputs)
	}
	if back.Verdicts[0] != v2.Verdicts[0] {
		t.Fatalf("rollback verdict %+v differs from v2's %+v", back.Verdicts[0], v2.Verdicts[0])
	}
	if d := vnn.CompileCalls() - compilesBefore; d != 0 {
		t.Fatalf("rollback triggered %d compiles, want 0 (warm artifacts)", d)
	}

	// The model document tells the whole story.
	mresp, err := http.Get(ts.URL + "/v1/models/demo")
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Live         int                    `json:"live"`
		PreviousLive int                    `json:"previous_live"`
		Versions     []vnn.ModelVersionJSON `json:"versions"`
	}
	if err := json.NewDecoder(mresp.Body).Decode(&doc); err != nil {
		t.Fatal(err)
	}
	mresp.Body.Close()
	states := []string{}
	for _, v := range doc.Versions {
		states = append(states, v.State)
	}
	if doc.Live != 2 || doc.PreviousLive != 3 ||
		states[0] != "rejected" || states[1] != "live" || states[2] != "retired" {
		t.Fatalf("model doc: live=%d prev=%d states=%v", doc.Live, doc.PreviousLive, states)
	}
	if doc.Versions[1].Requests == 0 || doc.Versions[1].Inputs == 0 {
		t.Fatalf("v2 serving counters empty: %+v", doc.Versions[1])
	}

	// Registry metrics surface in both renderings.
	m := serverMetrics(t, ts.URL)
	if !m.Registry.Ready || m.Registry.Models != 1 || len(m.Registry.Versions) != 3 {
		t.Fatalf("registry metrics: %+v", m.Registry)
	}
	promResp, err := http.Get(ts.URL + "/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	var prom bytes.Buffer
	prom.ReadFrom(promResp.Body)
	promResp.Body.Close()
	for _, want := range []string{
		`vnnd_model_version_info{model="demo",version="2",state="live"`,
		`vnnd_model_flagged_total{model="demo",version="2"}`,
		"vnnd_registry_ready 1",
	} {
		if !bytes.Contains(prom.Bytes(), []byte(want)) {
			t.Fatalf("prometheus rendering missing %q", want)
		}
	}
}

// TestModelSubmitAsyncEvents covers the default async path: 202 with the
// gate job id, SSE progress on /v1/models/{name}/events, terminal result.
func TestModelSubmitAsyncEvents(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	waitRegistryReady(t, srv)

	netJSON, err := vnn.MarshalNetwork(rolloutNet())
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.ModelSubmitRequest{
		Model:   "async",
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: [][2]float64{{0, 1}, {0, 1}}},
		Options: vnnserver.QueryOptions{Workers: 1},
		Gate:    gateAtMost(1.5),
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var acc vnnserver.ModelSubmitResponse
	if err := json.NewDecoder(resp.Body).Decode(&acc); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || acc.ID == "" || acc.State != "pending" {
		t.Fatalf("async submit: status %d, %+v", resp.StatusCode, acc)
	}

	ev, err := http.Get(ts.URL + "/v1/models/async/events")
	if err != nil {
		t.Fatal(err)
	}
	defer ev.Body.Close()
	gotResult := false
	var final vnnserver.ModelSubmitResponse
	readSSE(t, ev.Body, func(e sseEvent) bool {
		if e.name != "result" {
			return true
		}
		gotResult = true
		if err := json.Unmarshal([]byte(e.data), &final); err != nil {
			t.Fatalf("result event: %v", err)
		}
		return false
	})
	if !gotResult {
		t.Fatal("event stream ended without a result")
	}
	if final.State != "admitted" || final.ID != acc.ID {
		t.Fatalf("terminal event: %+v", final.ModelVersionJSON)
	}

	// The gate left a trace under the job id, rooted at "gate".
	tr, err := http.Get(ts.URL + "/debug/traces/" + acc.ID)
	if err != nil {
		t.Fatal(err)
	}
	var traceDoc struct {
		Root struct {
			Name     string `json:"name"`
			Children []struct {
				Name string `json:"name"`
			} `json:"children"`
		} `json:"root"`
	}
	if err := json.NewDecoder(tr.Body).Decode(&traceDoc); err != nil {
		t.Fatal(err)
	}
	tr.Body.Close()
	if traceDoc.Root.Name != "gate" {
		t.Fatalf("trace root %q, want gate", traceDoc.Root.Name)
	}
}

func TestModelSubmitValidation(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	waitRegistryReady(t, srv)
	netJSON, err := vnn.MarshalNetwork(rolloutNet())
	if err != nil {
		t.Fatal(err)
	}
	post := func(body string) int {
		resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader([]byte(body)))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	region := `{"box":[[0,1],[0,1]]}`
	cases := map[string]string{
		"bad name":     fmt.Sprintf(`{"model":"no spaces","network":%s,"region":%s}`, netJSON, region),
		"no network":   `{"model":"m"}`,
		"empty gate":   fmt.Sprintf(`{"model":"m","network":%s,"region":%s,"gate":{"analyses":[]}}`, netJSON, region),
		"bad gate":     fmt.Sprintf(`{"model":"m","network":%s,"region":%s,"gate":{"analyses":[{"kind":"verify","properties":[{"kind":"at_most","output":0,"threshold":1}]}],"max_flag_rate":2}}`, netJSON, region),
		"bad monitor":  fmt.Sprintf(`{"model":"m","network":%s,"region":%s,"monitor":{"data":[]}}`, netJSON, region),
		"unknown keys": fmt.Sprintf(`{"model":"m","network":%s,"region":%s,"bogus":1}`, netJSON, region),
	}
	for name, body := range cases {
		if status := post(body); status != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", name, status)
		}
	}

	// Infer-side validation: unknown model 404; model + explicit workload
	// conflict 400; query/body disagreement 400.
	if status := modelInfer(t, ts.URL, "ghost", [][]float64{{0, 0}}, nil); status != http.StatusNotFound {
		t.Fatalf("unknown model infer: status %d, want 404", status)
	}
	conflict, _ := json.Marshal(vnnserver.InferRequest{
		Model: "m", Network: netJSON, Inputs: [][]float64{{0, 0}},
	})
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(conflict))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("model+network conflict: status %d, want 400", resp.StatusCode)
	}
	disagree, _ := json.Marshal(vnnserver.InferRequest{Model: "a", Inputs: [][]float64{{0, 0}}})
	resp, err = http.Post(ts.URL+"/v1/infer?model=b", "application/json", bytes.NewReader(disagree))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("query/body model disagreement: status %d, want 400", resp.StatusCode)
	}
}

// TestModelRestartRecovery pins the persistence contract: a server
// restarted onto the same -data-dir recovers its serving table and
// answers ?model= requests bit-identically, without re-running any gate.
func TestModelRestartRecovery(t *testing.T) {
	dir := t.TempDir()
	srv1, ts1 := newTestServer(t, vnnserver.Config{DataDir: dir})
	waitRegistryReady(t, srv1)

	mon := &vnnserver.InferMonitorSpec{Data: [][]float64{{0.9, 0.1}, {0.1, 0.9}}, Gamma: 0}
	submitModel(t, ts1.URL, "demo", rolloutNet(), gateAtMost(1.5), mon)
	promoteModel(t, ts1.URL, "demo", `{}`)
	var before vnnserver.InferResponse
	if status := modelInfer(t, ts1.URL, "demo", [][]float64{{0.9, 0.1}}, &before); status != http.StatusOK {
		t.Fatalf("pre-restart infer status %d", status)
	}
	srv1.Drain(time.Second)
	ts1.Close()

	srv2, ts2 := newTestServer(t, vnnserver.Config{DataDir: dir})
	waitRegistryReady(t, srv2)
	var after vnnserver.InferResponse
	if status := modelInfer(t, ts2.URL, "demo", [][]float64{{0.9, 0.1}}, &after); status != http.StatusOK {
		t.Fatalf("post-restart infer status %d", status)
	}
	if after.ModelVersion != before.ModelVersion || after.Route != "live" {
		t.Fatalf("recovered routing: %+v", after)
	}
	if after.Outputs[0][0] != before.Outputs[0][0] { // bit-identical recompile
		t.Fatalf("recovered output %v, want %v", after.Outputs, before.Outputs)
	}
	if len(after.Verdicts) != 1 || after.Verdicts[0] != before.Verdicts[0] {
		t.Fatalf("recovered monitor verdicts %+v, want %+v", after.Verdicts, before.Verdicts)
	}
}

// TestReadyzLivenessSplit pins the health split: /readyz tracks registry
// recovery and drain, /healthz answers 200 throughout.
func TestReadyzLivenessSplit(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	waitRegistryReady(t, srv)

	get := func(path string) (int, map[string]any) {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		doc := map[string]any{}
		json.NewDecoder(resp.Body).Decode(&doc)
		return resp.StatusCode, doc
	}
	if status, doc := get("/readyz"); status != http.StatusOK || doc["ready"] != true {
		t.Fatalf("ready server: /readyz %d %v", status, doc)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("ready server: /healthz %d", status)
	}

	srv.Drain(0)
	if status, doc := get("/readyz"); status != http.StatusServiceUnavailable || doc["ready"] != false {
		t.Fatalf("draining server: /readyz %d %v", status, doc)
	}
	if status, _ := get("/healthz"); status != http.StatusOK {
		t.Fatalf("draining server: /healthz %d (liveness must survive drain)", status)
	}
}

// TestWorkloadsIndex pins GET /v1/workloads: every completed compile and
// monitor artifact appears with kind, size and age.
func TestWorkloadsIndex(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	waitRegistryReady(t, srv)
	mon := &vnnserver.InferMonitorSpec{Data: [][]float64{{0.9, 0.1}, {0.1, 0.9}}, Gamma: 0}
	sub := submitModel(t, ts.URL, "demo", rolloutNet(), gateAtMost(1.5), mon)

	resp, err := http.Get(ts.URL + "/v1/workloads")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var idx vnnserver.WorkloadsResponse
	if err := json.NewDecoder(resp.Body).Decode(&idx); err != nil {
		t.Fatal(err)
	}
	if idx.Count != len(idx.Workloads) || idx.Count < 2 {
		t.Fatalf("index: %+v", idx)
	}
	kinds := map[string]string{}
	for _, w := range idx.Workloads {
		if w.Bytes <= 0 || w.AgeMS < 0 {
			t.Fatalf("entry %+v has empty accounting", w)
		}
		kinds[w.Fingerprint] = w.Kind
	}
	if kinds[sub.Fingerprint] != "compile" {
		t.Fatalf("compile workload %s missing from index: %v", sub.Fingerprint, kinds)
	}
	foundMonitor := false
	for _, k := range kinds {
		if k == "monitor" {
			foundMonitor = true
		}
	}
	if !foundMonitor {
		t.Fatalf("monitor artifact missing from index: %v", kinds)
	}
}
