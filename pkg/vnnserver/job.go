package vnnserver

import (
	"fmt"
	"sync"
	"time"

	"repro/pkg/vnn"
)

// maxReplayEvents bounds the per-job progress buffer replayed to late
// event subscribers; older events are dropped (progress events are
// monotone snapshots, so the latest ones carry the state).
const maxReplayEvents = 256

// maxRetainedJobs bounds how many finished jobs the registry remembers
// for result/event retrieval before the oldest are forgotten.
const maxRetainedJobs = 256

// job is one query's lifecycle — verification or analysis batch alike:
// progress events buffered for replay and fanned out to live subscribers,
// then a terminal response (a *VerifyResponse or *AnalyzeResponse,
// whichever endpoint created the job).
type job struct {
	id          string
	fingerprint string
	created     time.Time

	mu      sync.Mutex
	events  []vnn.Event
	dropped int
	subs    map[chan vnn.Event]struct{}

	done chan struct{} // closed by finish
	resp any
	err  error
}

// publish buffers one progress event and forwards it to every live
// subscriber without blocking (a slow subscriber skips events rather than
// stalling the solver's progress callback).
func (j *job) publish(ev vnn.Event) {
	j.mu.Lock()
	if len(j.events) >= maxReplayEvents {
		j.events = j.events[1:]
		j.dropped++
	}
	j.events = append(j.events, ev)
	for ch := range j.subs {
		select {
		case ch <- ev:
		default:
		}
	}
	j.mu.Unlock()
}

// subscribe returns the buffered events so far plus a channel of live
// ones; the returned cancel detaches the subscription.
func (j *job) subscribe() (replay []vnn.Event, live chan vnn.Event, cancel func()) {
	ch := make(chan vnn.Event, 64)
	j.mu.Lock()
	replay = append([]vnn.Event(nil), j.events...)
	j.subs[ch] = struct{}{}
	j.mu.Unlock()
	return replay, ch, func() {
		j.mu.Lock()
		delete(j.subs, ch)
		j.mu.Unlock()
	}
}

// finish records the terminal answer and wakes everyone waiting on done.
func (j *job) finish(resp any, err error) {
	j.mu.Lock()
	j.resp, j.err = resp, err
	j.mu.Unlock()
	close(j.done)
}

// result returns the terminal answer; valid only after done is closed.
func (j *job) result() (any, error) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.resp, j.err
}

// finished reports whether the job has a terminal answer.
func (j *job) finished() bool {
	select {
	case <-j.done:
		return true
	default:
		return false
	}
}

// registry tracks jobs by id, retiring the oldest finished ones once more
// than maxRetainedJobs have accumulated.
type registry struct {
	mu    sync.Mutex
	jobs  map[string]*job
	order []string // creation order, for pruning
	seq   int64
}

func newRegistry() *registry {
	return &registry{jobs: make(map[string]*job)}
}

// create registers a fresh job for a query with the given fingerprint.
func (r *registry) create(fingerprint string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	j := &job{
		id:          fmt.Sprintf("q%08d", r.seq),
		fingerprint: fingerprint,
		created:     time.Now(),
		subs:        make(map[chan vnn.Event]struct{}),
		done:        make(chan struct{}),
	}
	r.jobs[j.id] = j
	r.order = append(r.order, j.id)
	r.pruneLocked()
	return j
}

// get returns the job with the given id, or nil.
func (r *registry) get(id string) *job {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.jobs[id]
}

// pruneLocked forgets the oldest finished jobs beyond the retention cap.
// Callers hold r.mu.
func (r *registry) pruneLocked() {
	for i := 0; len(r.jobs) > maxRetainedJobs && i < len(r.order); {
		id := r.order[i]
		j, ok := r.jobs[id]
		if ok && !j.finished() {
			i++ // still running: keep, try the next-oldest
			continue
		}
		delete(r.jobs, id)
		r.order = append(r.order[:i], r.order[i+1:]...)
	}
}
