package vnnserver

import (
	"expvar"

	"repro/internal/milp"
	"repro/internal/obs"
	"repro/internal/verify"
	"repro/pkg/vnnfleet"
	"repro/pkg/vnnregistry"
)

// Process-wide expvar counters, published once under the vnnd.*
// namespace. Like internal/verify's EncodePasses/TightenPasses they
// aggregate across every Server in the process, so they are visible both
// through each server's /metrics snapshot and through the standard
// /debug/vars endpoint wherever the caller mounts expvar.Handler().
var (
	xCacheHits      = expvar.NewInt("vnnd.cache.hits")
	xCacheMisses    = expvar.NewInt("vnnd.cache.misses")
	xCacheEvictions = expvar.NewInt("vnnd.cache.evictions")
	// xCacheBytes is the accounted resident size of completed compile
	// cache entries (sums vnn.CompiledNetwork.SizeBytes; falls on evict).
	xCacheBytes     = expvar.NewInt("vnnd.cache.bytes")
	xQueries        = expvar.NewInt("vnnd.queries")
	xAnalyzes       = expvar.NewInt("vnnd.analyzes")
	xFalsifications = expvar.NewInt("vnnd.falsifications")
	xRejected       = expvar.NewInt("vnnd.rejected")
	xNodes          = expvar.NewInt("vnnd.nodes")
	xLPPivots       = expvar.NewInt("vnnd.lp_pivots")
	// xAnalysisKinds counts analyses served through /v1/analyze by kind
	// (vnnd.analyses.coverage, vnnd.analyses.quant_sweep, ...).
	xAnalysisKinds = expvar.NewMap("vnnd.analyses")
	// vnnd.infer.* instruments the online inference plane: requests and
	// inputs served, inputs the runtime monitor flagged out-of-pattern,
	// and monitor-cache effectiveness (misses = monitor builds).
	xInferRequests      = expvar.NewInt("vnnd.infer.requests")
	xInferInputs        = expvar.NewInt("vnnd.infer.inputs")
	xInferFlagged       = expvar.NewInt("vnnd.infer.flagged")
	xInferMonitorHits   = expvar.NewInt("vnnd.infer.monitor.hits")
	xInferMonitorMisses = expvar.NewInt("vnnd.infer.monitor.misses")
	// vnnd.models.* instruments the verified-rollout plane: versions
	// submitted, gate outcomes, and lifecycle operations.
	xModelSubmits    = expvar.NewInt("vnnd.models.submits")
	xModelAdmitted   = expvar.NewInt("vnnd.models.admitted")
	xModelRejected   = expvar.NewInt("vnnd.models.rejected")
	xModelPromotions = expvar.NewInt("vnnd.models.promotions")
	xModelRollbacks  = expvar.NewInt("vnnd.models.rollbacks")
)

// Metrics is the /metrics snapshot: cache effectiveness, admission state,
// and cumulative solver effort. EncodePasses/TightenPasses are the
// process-wide instrumentation counters from internal/verify — the ground
// truth that cached compilations are actually reused (cache hits add
// zero passes).
//
// Consistency: one Metrics value is a single-pass snapshot with a
// monotone guarantee between request counters and effort counters.
// Handlers bump effort (nodes, pivots, infer inputs/flagged) BEFORE they
// bump the request counter, and Metrics reads the request counters
// FIRST — so any request this snapshot counts also has its effort
// included. The converse skew (effort from a request not yet counted)
// is possible and benign: effort/requests ratios never dip spuriously.
// The Prometheus rendering (prom.go) is generated from one Metrics
// value, so scrapes inherit the same guarantee.
type Metrics struct {
	// Node is the stable node id the federation plane keys this
	// document by (Config.NodeID, or hostname-derived at boot).
	Node     string  `json:"node"`
	UptimeMS float64 `json:"uptime_ms"`
	// Build identifies the running binary (also exposed as the
	// vnnd_build_info gauge in the Prometheus rendering).
	Build     BuildInfo      `json:"build"`
	Draining  bool           `json:"draining"`
	Cache     CacheStats     `json:"cache"`
	Scheduler SchedulerStats `json:"scheduler"`
	Queries   int64          `json:"queries"`
	// AnalyzeRequests counts /v1/analyze batches; Analyses breaks the
	// served analyses down by kind (coverage, quant_sweep, ...).
	AnalyzeRequests int64            `json:"analyze_requests"`
	Analyses        map[string]int64 `json:"analyses"`
	Falsifications  int64            `json:"falsifications"`
	// Infer snapshots the online inference plane.
	Infer InferStats `json:"infer"`
	// Fleet snapshots the replication plane: reconcile rounds, coded
	// symbols exchanged, entries pulled/pushed, per-peer last-sync.
	Fleet vnnfleet.Stats `json:"fleet"`
	// Registry snapshots the verified-rollout plane: readiness, versions
	// by lifecycle state, and per-version serving/monitor counters.
	Registry      vnnregistry.Metrics `json:"registry"`
	Nodes         int64               `json:"nodes"`
	LPPivots      int64               `json:"lp_pivots"`
	EncodePasses  int64               `json:"encode_passes"`
	TightenPasses int64               `json:"tighten_passes"`
	// Solves counts branch-and-bound solver invocations process-wide
	// (from internal/milp).
	Solves int64 `json:"solves"`
	// Runtime carries process gauges (goroutines, heap in use, GC pause
	// p99, uptime) sampled from runtime/metrics at snapshot time.
	Runtime obs.RuntimeStats `json:"runtime"`
	// Tenants is the per-tenant accounting plane keyed by API-key-derived
	// label, cardinality-capped at Config.TenantCap (+1 for the "other"
	// overflow bucket).
	Tenants map[string]obs.TenantSnapshot `json:"tenants"`
	// Histograms carries every latency/size histogram in wire form so
	// federation peers can merge them bucket-wise (boundaries are
	// identical by construction — see internal/obs).
	Histograms []obs.HistogramJSON `json:"histograms"`
}

// InferStats is the /metrics view of the inference plane.
type InferStats struct {
	// Requests and Inputs count served batches and individual inputs.
	Requests int64 `json:"requests"`
	Inputs   int64 `json:"inputs"`
	// Flagged counts inputs the runtime monitor rejected as
	// out-of-pattern.
	Flagged int64 `json:"flagged"`
	// Monitors is the number of cached monitor artifacts.
	Monitors int `json:"monitors"`
	// Workloads is the number of remembered by-fingerprint workloads.
	Workloads int `json:"workloads"`
	// Shards reports per-lane throughput: how many batch chunks and
	// inputs each serving lane processed. An idle lane means batches
	// were too small to shard (below the per-chunk minimum), not a bug.
	Shards []InferShardStats `json:"shards"`
}

// InferShardStats is one serving lane's cumulative throughput.
type InferShardStats struct {
	Batches int64 `json:"batches"`
	Inputs  int64 `json:"inputs"`
}

// shardStats snapshots the per-lane inference throughput counters.
func (s *Server) shardStats() []InferShardStats {
	out := make([]InferShardStats, len(s.shards.shards))
	for i, sh := range s.shards.shards {
		out[i] = InferShardStats{Batches: sh.batches.Load(), Inputs: sh.inputs.Load()}
	}
	return out
}

// Metrics snapshots the server's observable state. Request counters are
// read before effort counters — see the ordering guarantee on Metrics.
func (s *Server) Metrics() Metrics {
	// Request counters first (handlers bump these LAST)...
	queries := s.queries.Load()
	analyzes := s.analyzes.Load()
	falsifications := s.falsifications.Load()
	inferRequests := s.inferRequests.Load()
	// ...then effort counters (handlers bump these FIRST), so every
	// counted request's effort is already visible.
	return Metrics{
		Node:            s.nodeID,
		UptimeMS:        msSince(s.start),
		Build:           Build(),
		Draining:        s.draining.Load(),
		Cache:           s.cache.Stats(),
		Scheduler:       s.sched.Stats(),
		Queries:         queries,
		AnalyzeRequests: analyzes,
		Analyses:        s.analysisCounts(),
		Falsifications:  falsifications,
		Infer: InferStats{
			Requests:  inferRequests,
			Inputs:    s.inferInputs.Load(),
			Flagged:   s.inferFlagged.Load(),
			Monitors:  s.monitors.Len(),
			Workloads: s.workloads.Len(),
			Shards:    s.shardStats(),
		},
		Fleet:         s.fleet.Stats(),
		Registry:      s.registry.Snapshot(),
		Nodes:         s.nodes.Load(),
		LPPivots:      s.pivots.Load(),
		EncodePasses:  verify.EncodePasses(),
		TightenPasses: verify.TightenPasses(),
		Solves:        milp.Solves(),
		Runtime:       obs.ReadRuntime(s.start),
		Tenants:       s.obs.tenants.Snapshot(),
		Histograms:    s.obs.histogramsJSON(),
	}
}
