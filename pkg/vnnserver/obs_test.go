// Observability-plane tests: the span tree a synchronous request leaves
// behind, the Prometheus text exposition round-trip, and scrape
// consistency under concurrent traffic (the last one is a race-detector
// target — CI runs this package under -race).

package vnnserver_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// getTrace fetches one trace by id, failing the test on any non-200.
func getTrace(t *testing.T, url, id string) obs.TraceJSON {
	t.Helper()
	resp, err := http.Get(url + "/debug/traces/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET /debug/traces/%s: %d %s", id, resp.StatusCode, body)
	}
	var tr obs.TraceJSON
	if err := json.NewDecoder(resp.Body).Decode(&tr); err != nil {
		t.Fatal(err)
	}
	return tr
}

// TestVerifyTraceSpanTree is the flight recorder's request-level
// contract: a synchronous /v1/verify leaves a trace — addressable by the
// job id the response echoes — whose root decomposes into the queue,
// cache (with a compile child on a miss) and solve phases, with
// non-negative durations that sum to at most the request wall time.
func TestVerifyTraceSpanTree(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	_, ts := newTestServer(t, vnnserver.Config{})
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)

	var vr vnnserver.VerifyResponse
	if status := postVerify(t, ts.URL, body, &vr); status != http.StatusOK {
		t.Fatalf("verify: status %d", status)
	}

	tr := getTrace(t, ts.URL, vr.ID)
	if tr.ID != vr.ID || tr.Route != "/v1/verify" {
		t.Fatalf("trace id/route = %q/%q, want %q//v1/verify", tr.ID, tr.Route, vr.ID)
	}
	if tr.Root == nil {
		t.Fatal("trace has no root span")
	}
	if tr.Root.DurationUS <= 0 {
		t.Fatalf("root duration %v us, want > 0", tr.Root.DurationUS)
	}
	if tr.Root.DurationUS > tr.DurationMS*1000+1 {
		t.Fatalf("root (%v us) outlives its trace (%v ms)", tr.Root.DurationUS, tr.DurationMS)
	}

	// The request phases appear in submission order, and — the internal
	// consistency bound — their durations sum to at most the request
	// wall time: queue, cache and solve do not overlap.
	var names []string
	var sum float64
	for _, c := range tr.Root.Children {
		names = append(names, c.Name)
		if c.DurationUS < 0 {
			t.Fatalf("span %q has negative duration %v", c.Name, c.DurationUS)
		}
		if c.StartUS < 0 || c.StartUS+c.DurationUS > tr.Root.DurationUS+1 {
			t.Fatalf("span %q [%v, +%v] escapes root window [0, %v]",
				c.Name, c.StartUS, c.DurationUS, tr.Root.DurationUS)
		}
		sum += c.DurationUS
	}
	if want := []string{"queue", "cache", "solve"}; !slicesEqual(names, want) {
		t.Fatalf("root children %v, want %v", names, want)
	}
	if sum > tr.Root.DurationUS+1 { // 1us slack for float rounding
		t.Fatalf("phase durations sum to %v us > request wall %v us", sum, tr.Root.DurationUS)
	}

	// First request: a cache miss, so the cache span carries the compile.
	cache := tr.Root.Children[1]
	if hit, ok := cache.Attrs["hit"].(bool); !ok || hit {
		t.Fatalf("cache span attrs = %v, want hit=false on first request", cache.Attrs)
	}
	if len(cache.Children) != 1 || cache.Children[0].Name != "compile" {
		t.Fatalf("cache children = %+v, want one compile span", cache.Children)
	}
	compile := cache.Children[0]
	for _, sub := range compile.Children {
		if sub.Name != "tighten" && sub.Name != "encode" {
			t.Fatalf("unexpected compile child %q", sub.Name)
		}
		if sub.DurationUS < 0 || sub.DurationUS > compile.DurationUS+1 {
			t.Fatalf("compile child %q duration %v us escapes compile %v us",
				sub.Name, sub.DurationUS, compile.DurationUS)
		}
	}

	// The solve span carries the branch-and-bound effort attrs.
	solve := tr.Root.Children[2]
	if _, ok := solve.Attrs["nodes"]; !ok {
		t.Fatalf("solve span attrs = %v, want nodes", solve.Attrs)
	}

	// A second identical request hits the cache: no compile child.
	var vr2 vnnserver.VerifyResponse
	if status := postVerify(t, ts.URL, body, &vr2); status != http.StatusOK {
		t.Fatalf("second verify: status %d", status)
	}
	tr2 := getTrace(t, ts.URL, vr2.ID)
	cache2 := tr2.Root.Children[1]
	if hit, _ := cache2.Attrs["hit"].(bool); !hit {
		t.Fatalf("second request cache attrs = %v, want hit=true", cache2.Attrs)
	}
	if len(cache2.Children) != 0 {
		t.Fatalf("cache hit grew a compile span: %+v", cache2.Children)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// promSample is one parsed exposition line.
type promSample struct {
	name   string
	labels string // raw label body without braces, "" when unlabeled
	value  float64
}

var promLine = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(?:\{([^}]*)\})? (\+Inf|-Inf|NaN|-?[0-9.eE+-]+)$`)

// parseProm parses a text exposition document, failing the test on any
// line that is neither a well-formed comment nor a sample.
func parseProm(t *testing.T, text string) (types map[string]string, samples []promSample) {
	t.Helper()
	types = map[string]string{}
	lastHelp := ""
	for _, line := range strings.Split(text, "\n") {
		switch {
		case line == "":
		case strings.HasPrefix(line, "# HELP "):
			lastHelp = strings.SplitN(strings.TrimPrefix(line, "# HELP "), " ", 2)[0]
		case strings.HasPrefix(line, "# TYPE "):
			parts := strings.SplitN(strings.TrimPrefix(line, "# TYPE "), " ", 2)
			if len(parts) != 2 || (parts[1] != "counter" && parts[1] != "gauge" && parts[1] != "histogram") {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			if parts[0] != lastHelp {
				t.Fatalf("TYPE %s not preceded by its HELP (last HELP %q)", parts[0], lastHelp)
			}
			types[parts[0]] = parts[1]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("unexpected comment line: %q", line)
		default:
			m := promLine.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("unparseable sample line: %q", line)
			}
			v, err := strconv.ParseFloat(m[3], 64)
			if err != nil {
				t.Fatalf("bad value in %q: %v", line, err)
			}
			samples = append(samples, promSample{name: m[1], labels: m[2], value: v})
		}
	}
	return types, samples
}

// histFamily collects one histogram series' parsed buckets.
type histFamily struct {
	buckets []struct {
		le  float64
		cum float64
	}
	sum, count float64
	haveCount  bool
}

// TestPromExpositionRoundTrip scrapes /metrics in the Prometheus text
// format after known traffic and re-parses it: every family must be
// well-formed, every histogram's buckets cumulative with a terminal
// +Inf equal to _count, and the counters must reflect the traffic. The
// default (no Accept header) rendering must remain JSON.
func TestPromExpositionRoundTrip(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	_, ts := newTestServer(t, vnnserver.Config{})

	vbody := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)
	if status := postVerify(t, ts.URL, vbody, nil); status != http.StatusOK {
		t.Fatalf("verify: status %d", status)
	}
	net := inferNet(7)
	rng := rand.New(rand.NewSource(7))
	ibody := inferBody(t, net, randRows(rng, 2, net.InputDim(), 1), nil)
	if status := postInfer(t, ts.URL, ibody, nil); status != http.StatusOK {
		t.Fatalf("infer: status %d", status)
	}

	// Default stays JSON.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "application/json") {
		t.Fatalf("default /metrics Content-Type = %q, want JSON", ct)
	}
	resp.Body.Close()

	// The negotiated scrape.
	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom /metrics Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	types, samples := parseProm(t, string(raw))

	if types["vnnd_request_duration_seconds"] != "histogram" {
		t.Fatalf("vnnd_request_duration_seconds type = %q", types["vnnd_request_duration_seconds"])
	}
	flat := map[string]float64{}
	hists := map[string]*histFamily{}
	for _, s := range samples {
		key := s.name
		if s.labels != "" {
			key += "{" + s.labels + "}"
		}
		flat[key] = s.value
		base, series, isBucket := s.name, s.labels, false
		switch {
		case strings.HasSuffix(s.name, "_bucket"):
			base, isBucket = strings.TrimSuffix(s.name, "_bucket"), true
			series = regexp.MustCompile(`,?le="[^"]*"`).ReplaceAllString(s.labels, "")
		case strings.HasSuffix(s.name, "_sum"):
			base = strings.TrimSuffix(s.name, "_sum")
		case strings.HasSuffix(s.name, "_count"):
			base = strings.TrimSuffix(s.name, "_count")
		default:
			continue
		}
		if types[base] != "histogram" {
			continue
		}
		h := hists[base+"|"+series]
		if h == nil {
			h = &histFamily{}
			hists[base+"|"+series] = h
		}
		switch {
		case isBucket:
			leStr := regexp.MustCompile(`le="([^"]*)"`).FindStringSubmatch(s.labels)[1]
			le := math.Inf(1)
			if leStr != "+Inf" {
				if le, err = strconv.ParseFloat(leStr, 64); err != nil {
					t.Fatalf("bad le %q: %v", leStr, err)
				}
			}
			h.buckets = append(h.buckets, struct{ le, cum float64 }{le, s.value})
		case strings.HasSuffix(s.name, "_sum"):
			h.sum = s.value
		default:
			h.count, h.haveCount = s.value, true
		}
	}

	// Known traffic: one verify (one compile) and one 2-input infer
	// batch (unmonitored, so it compiles nothing).
	for key, want := range map[string]float64{
		"vnnd_queries_total":        1,
		"vnnd_infer_requests_total": 1,
		"vnnd_infer_inputs_total":   2,
		"vnnd_cache_misses_total":   1,
	} {
		if got := flat[key]; got != want {
			t.Fatalf("%s = %v, want %v", key, got, want)
		}
	}
	if !anyBuildInfo(samples) {
		t.Fatal("no vnnd_build_info sample")
	}

	if len(hists) == 0 {
		t.Fatal("no histogram series parsed")
	}
	for key, h := range hists {
		sort.Slice(h.buckets, func(i, j int) bool { return h.buckets[i].le < h.buckets[j].le })
		if len(h.buckets) == 0 || !math.IsInf(h.buckets[len(h.buckets)-1].le, 1) {
			t.Fatalf("%s: no +Inf bucket", key)
		}
		prev := 0.0
		for _, b := range h.buckets {
			if b.cum < prev {
				t.Fatalf("%s: bucket le=%v decreases (%v -> %v)", key, b.le, prev, b.cum)
			}
			prev = b.cum
		}
		if !h.haveCount {
			t.Fatalf("%s: missing _count", key)
		}
		if inf := h.buckets[len(h.buckets)-1].cum; inf != h.count {
			t.Fatalf("%s: +Inf bucket %v != _count %v", key, inf, h.count)
		}
		if h.count > 0 && h.sum < 0 {
			t.Fatalf("%s: negative _sum %v with count %v", key, h.sum, h.count)
		}
	}
	verifyLat := hists[`vnnd_request_duration_seconds|route="/v1/verify"`]
	if verifyLat == nil || verifyLat.count != 1 {
		t.Fatalf("verify latency series = %+v, want count 1", verifyLat)
	}
	if verifyLat.sum <= 0 {
		t.Fatalf("verify latency sum = %v, want > 0", verifyLat.sum)
	}

	// Per-tenant accounting: keyless traffic lands on the "anonymous"
	// tenant, with the same counts as the global counters.
	if types["vnnd_tenant_request_duration_seconds"] != "histogram" {
		t.Fatalf("vnnd_tenant_request_duration_seconds type = %q", types["vnnd_tenant_request_duration_seconds"])
	}
	for key, want := range map[string]float64{
		`vnnd_tenant_requests_total{tenant="anonymous",route="/v1/verify"}`: 1,
		`vnnd_tenant_requests_total{tenant="anonymous",route="/v1/infer"}`:  1,
		`vnnd_tenant_inputs_total{tenant="anonymous"}`:                      2,
		`vnnd_tenant_flagged_total{tenant="anonymous"}`:                     0,
	} {
		if got := flat[key]; got != want {
			t.Fatalf("%s = %v, want %v", key, got, want)
		}
	}
	tenantLat := hists[`vnnd_tenant_request_duration_seconds|tenant="anonymous",route="/v1/verify"`]
	if tenantLat == nil || tenantLat.count != 1 {
		t.Fatalf("anonymous verify latency series = %+v, want count 1", tenantLat)
	}

	// Runtime gauges ride the same scrape.
	if flat["vnnd_goroutines"] < 1 {
		t.Fatalf("vnnd_goroutines = %v, want >= 1", flat["vnnd_goroutines"])
	}
	if flat["vnnd_heap_inuse_bytes"] <= 0 {
		t.Fatalf("vnnd_heap_inuse_bytes = %v, want > 0", flat["vnnd_heap_inuse_bytes"])
	}
}

func anyBuildInfo(samples []promSample) bool {
	for _, s := range samples {
		if s.name == "vnnd_build_info" && s.value == 1 &&
			strings.Contains(s.labels, `version="`) && strings.Contains(s.labels, `go="go`) {
			return true
		}
	}
	return false
}

// TestMetricsScrapeConsistentUnderTraffic hammers the warm by-fingerprint
// infer path from several clients while scraping /metrics (both
// renderings) and /debug/traces concurrently. Under -race this is the
// data-race probe for the whole observability plane; the assertion per
// JSON scrape is the documented snapshot guarantee — every batch carries
// exactly 2 inputs, so a snapshot may never show fewer than 2×requests
// inputs.
func TestMetricsScrapeConsistentUnderTraffic(t *testing.T) {
	net := inferNet(11)
	_, ts := newTestServer(t, vnnserver.Config{TraceRing: 32})
	rng := rand.New(rand.NewSource(11))
	inputs := randRows(rng, 2, net.InputDim(), 1)

	var full vnnserver.InferResponse
	if status := postInfer(t, ts.URL, inferBody(t, net, inputs, nil), &full); status != http.StatusOK {
		t.Fatalf("priming infer: status %d", status)
	}
	warm, err := json.Marshal(vnnserver.InferRequest{Fingerprint: full.Fingerprint, Inputs: inputs})
	if err != nil {
		t.Fatal(err)
	}

	const writers, perWriter = 4, 25
	var wg sync.WaitGroup
	done := make(chan struct{})
	errc := make(chan error, writers+3)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				resp, err := http.Post(ts.URL+"/v1/infer", "application/json", strings.NewReader(string(warm)))
				if err != nil {
					errc <- err
					return
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					errc <- fmt.Errorf("infer status %d", resp.StatusCode)
					return
				}
			}
		}()
	}
	scrape := func(path string) {
		for {
			select {
			case <-done:
				return
			default:
			}
			resp, err := http.Get(ts.URL + path)
			if err != nil {
				errc <- err
				return
			}
			if path == "/metrics" {
				var m vnnserver.Metrics
				if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
					resp.Body.Close()
					errc <- err
					return
				}
				if m.Infer.Inputs < 2*m.Infer.Requests {
					resp.Body.Close()
					errc <- fmt.Errorf("snapshot skew: %d requests but only %d inputs", m.Infer.Requests, m.Infer.Inputs)
					return
				}
			} else {
				io.Copy(io.Discard, resp.Body)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
				return
			}
		}
	}
	var readers sync.WaitGroup
	for _, path := range []string{"/metrics", "/metrics?format=prometheus", "/debug/traces"} {
		readers.Add(1)
		go func(p string) {
			defer readers.Done()
			scrape(p)
		}(path)
	}
	wg.Wait()
	close(done)
	readers.Wait()
	close(errc)
	for err := range errc {
		t.Fatal(err)
	}

	m := serverMetrics(t, ts.URL)
	if want := int64(writers*perWriter + 1); m.Infer.Requests != want {
		t.Fatalf("final requests = %d, want %d", m.Infer.Requests, want)
	}
	if want := int64(2 * (writers*perWriter + 1)); m.Infer.Inputs != want {
		t.Fatalf("final inputs = %d, want %d", m.Infer.Inputs, want)
	}
}
