// GET /v1/workloads: the index beside the fleet plane's per-entry
// GET /v1/workloads/{fingerprint} export. Where the export serves one
// artifact's canonical document to a reconciling peer, the index tells a
// fleet operator what a node currently holds — every completed compile
// and monitor artifact with its size and age — without transferring any
// of them.

package vnnserver

import (
	"net/http"
	"sort"
	"time"
)

// WorkloadIndexEntry is one cached artifact in the GET /v1/workloads
// index.
type WorkloadIndexEntry struct {
	// Fingerprint is the artifact's cache key: a vnn1- compile workload
	// or a vnnmw1- monitor build workload (the namespaces are disjoint).
	Fingerprint string `json:"fingerprint"`
	// Kind is "compile" or "monitor".
	Kind string `json:"kind"`
	// Bytes is the artifact's accounted size (compiled-network resident
	// size, or the marshaled monitor document length).
	Bytes int64 `json:"bytes"`
	// AgeMS is how long the artifact has been cached on this node.
	AgeMS float64 `json:"age_ms"`
}

// WorkloadsResponse is the GET /v1/workloads body.
type WorkloadsResponse struct {
	Count     int                  `json:"count"`
	Workloads []WorkloadIndexEntry `json:"workloads"`
}

// handleWorkloads serves the cached-artifact index. It stays readable
// during drain: operators inspect draining nodes, and the read touches no
// query state.
func (s *Server) handleWorkloads(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	compiles := s.cache.entriesInfo()
	monitors := s.monitors.entriesInfo()
	resp := WorkloadsResponse{Workloads: make([]WorkloadIndexEntry, 0, len(compiles)+len(monitors))}
	add := func(kind string, arts []cachedArtifact) {
		for _, a := range arts {
			resp.Workloads = append(resp.Workloads, WorkloadIndexEntry{
				Fingerprint: a.key,
				Kind:        kind,
				Bytes:       a.bytes,
				AgeMS:       float64(now.Sub(a.added).Microseconds()) / 1e3,
			})
		}
	}
	add("compile", compiles)
	add("monitor", monitors)
	// Deterministic order for scripts and smoke greps; the namespaces are
	// disjoint so fingerprint alone is a total key.
	sort.Slice(resp.Workloads, func(i, j int) bool {
		return resp.Workloads[i].Fingerprint < resp.Workloads[j].Fingerprint
	})
	resp.Count = len(resp.Workloads)
	writeJSON(w, http.StatusOK, resp)
}
