package vnnserver

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the binary a node runs: the main module version,
// the VCS revision it was built from (short hash, "+dirty" when the
// tree was modified), and the Go toolchain. Fleet operators read it
// from /healthz, the /metrics JSON snapshot, and the vnnd_build_info
// Prometheus gauge to tell which node runs what.
type BuildInfo struct {
	Version  string `json:"version"`
	Revision string `json:"revision,omitempty"`
	Time     string `json:"time,omitempty"`
	Go       string `json:"go"`
}

var (
	buildOnce sync.Once
	buildInfo BuildInfo
)

// Build reads the binary's build information once (runtime/debug only
// has it when the binary was built from a module checkout; "devel" and
// empty fields are normal under plain `go test`).
func Build() BuildInfo {
	buildOnce.Do(func() {
		buildInfo = BuildInfo{Version: "devel", Go: runtime.Version()}
		bi, ok := debug.ReadBuildInfo()
		if !ok {
			return
		}
		if bi.Main.Version != "" && bi.Main.Version != "(devel)" {
			buildInfo.Version = bi.Main.Version
		}
		var revision string
		var modified bool
		for _, kv := range bi.Settings {
			switch kv.Key {
			case "vcs.revision":
				revision = kv.Value
			case "vcs.time":
				buildInfo.Time = kv.Value
			case "vcs.modified":
				modified = kv.Value == "true"
			}
		}
		if len(revision) > 12 {
			revision = revision[:12]
		}
		if modified && revision != "" {
			revision += "+dirty"
		}
		buildInfo.Revision = revision
	})
	return buildInfo
}
