// The server's observability plane (see DESIGN.md "Observability"):
// one flight recorder (internal/obs) shared by every handler, plus the
// latency/size histograms the Prometheus rendering exposes. Handlers
// open a root span per request and hang phase children off it —
// admission wait, cache lookup, compile (with tighten/encode attributed
// from internal/verify's phase clocks), branch-and-bound, monitor
// build, per-lane infer chunks — so a single /debug/traces/{id} fetch
// answers "where did this request spend its time".

package vnnserver

import (
	"time"

	"repro/internal/obs"
)

// serverObs bundles the recorder and histograms. Built once in New;
// every field is used unconditionally (the obs package is nil-safe, but
// the server always records — the cost is two atomic adds per
// observation and a handful of small allocations per request, measured
// in BENCH_infer.json's BenchmarkInferHTTP before/after).
type serverObs struct {
	rec *obs.Recorder

	// Per-route request latency (one histogram per route so the
	// Prometheus family vnnd_request_duration_seconds carries a route
	// label).
	verifyLatency  *obs.Histogram
	analyzeLatency *obs.Histogram
	inferLatency   *obs.Histogram
	falsifyLatency *obs.Histogram
	gateLatency    *obs.Histogram

	// Scheduler decomposition: time spent waiting for a run slot vs
	// running (queue-wait + run ≈ request latency for scheduled routes).
	queueWait *obs.Histogram
	runTime   *obs.Histogram

	// Artifact build costs (cache misses only — hits cost nothing).
	compileTime  *obs.Histogram
	monitorBuild *obs.Histogram

	// Inference plane: batch sizes and per-lane chunk times.
	inferBatch *obs.Histogram
	chunkTime  *obs.Histogram

	// Fleet plane: wall time per reconcile round.
	reconcileTime *obs.Histogram

	// tenants is the per-tenant accounting plane: X-API-Key-derived
	// labels with a hard cardinality cap (Config.TenantCap), so the
	// request/latency/inputs/flagged counters and queue-wait histograms
	// below gain a tenant dimension without an unbounded label space.
	tenants *obs.TenantSet
}

// tenantRoutes is the fixed route universe per-tenant series exist for.
var tenantRoutes = []string{"/v1/verify", "/v1/analyze", "/v1/infer", "/v1/falsify"}

func newServerObs(cfg Config, node string) *serverObs {
	slowLog := cfg.SlowLog
	return &serverObs{
		rec: obs.NewRecorder(obs.RecorderOptions{
			Ring:          cfg.TraceRing,
			SlowThreshold: cfg.SlowRequest,
			SlowLog:       slowLog,
			Node:          node,
		}),
		tenants:        obs.NewTenantSet(cfg.TenantCap, 1e-9, tenantRoutes...),
		verifyLatency:  obs.NewHistogram("vnnd_request_duration_seconds", "Request latency by route.", 1e-9),
		analyzeLatency: obs.NewHistogram("vnnd_request_duration_seconds", "Request latency by route.", 1e-9),
		inferLatency:   obs.NewHistogram("vnnd_request_duration_seconds", "Request latency by route.", 1e-9),
		falsifyLatency: obs.NewHistogram("vnnd_request_duration_seconds", "Request latency by route.", 1e-9),
		gateLatency:    obs.NewHistogram("vnnd_request_duration_seconds", "Request latency by route.", 1e-9),
		queueWait:      obs.NewHistogram("vnnd_queue_wait_seconds", "Time admitted queries wait for a run slot.", 1e-9),
		runTime:        obs.NewHistogram("vnnd_run_seconds", "Time admitted queries spend running.", 1e-9),
		compileTime:    obs.NewHistogram("vnnd_compile_seconds", "Compile cost on cache misses.", 1e-9),
		monitorBuild:   obs.NewHistogram("vnnd_monitor_build_seconds", "Monitor build cost on cache misses.", 1e-9),
		inferBatch:     obs.NewHistogram("vnnd_infer_batch_inputs", "Inputs per /v1/infer batch.", 1),
		chunkTime:      obs.NewHistogram("vnnd_infer_chunk_seconds", "Per-lane kernel chunk time.", 1e-9),
		reconcileTime:  obs.NewHistogram("vnnd_fleet_reconcile_seconds", "Wall time per fleet reconcile round.", 1e-9),
	}
}

// observeSince records now-start into h (nanoseconds).
func observeSince(h *obs.Histogram, start time.Time) {
	h.Observe(int64(time.Since(start)))
}

// histogramsJSON snapshots every histogram into the wire form the
// /metrics JSON document and the fleet federation plane carry. The
// request-duration family comes first, one route-labelled entry per
// route; documents from different nodes merge entry-by-entry on
// (name, route) — see mergeMetrics.
func (o *serverObs) histogramsJSON() []obs.HistogramJSON {
	out := make([]obs.HistogramJSON, 0, 12)
	for _, rh := range []struct {
		route string
		h     *obs.Histogram
	}{
		{"/v1/verify", o.verifyLatency},
		{"/v1/analyze", o.analyzeLatency},
		{"/v1/infer", o.inferLatency},
		{"/v1/falsify", o.falsifyLatency},
		{"gate", o.gateLatency},
	} {
		j := rh.h.Snapshot().JSON()
		j.Route = rh.route
		out = append(out, j)
	}
	for _, h := range []*obs.Histogram{
		o.queueWait, o.runTime,
		o.compileTime, o.monitorBuild,
		o.inferBatch, o.chunkTime,
		o.reconcileTime,
	} {
		out = append(out, h.Snapshot().JSON())
	}
	return out
}
