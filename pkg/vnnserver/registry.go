// The verified-rollout HTTP surface: /v1/models and friends, backed by
// pkg/vnnregistry. Submitting a version runs its certification gate
// asynchronously through the same admission scheduler and job registry
// as /v1/verify — the gate IS a portfolio batch, so it queues, streams
// SSE progress, and traces exactly like one (trace id = job id, "gate"
// root with per-analysis children). Serving integration lives in
// infer.go (?model= resolution); readiness in handleReadyz below.

package vnnserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"regexp"
	"strconv"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnn"
	"repro/pkg/vnnregistry"
)

// modelNameRE bounds model names to a DNS-ish charset: they appear in
// URLs, metric labels and file-backed snapshots.
var modelNameRE = regexp.MustCompile(`^[a-zA-Z0-9][a-zA-Z0-9._-]{0,63}$`)

// ModelSubmitRequest is the POST /v1/models body: a named model version
// plus the gate it must pass.
type ModelSubmitRequest struct {
	// Model names the rollout target; versions are numbered per model in
	// submission order.
	Model string `json:"model"`
	// Network is the canonical network JSON (see vnn.MarshalNetwork).
	Network json.RawMessage `json:"network"`
	// Region is the operational design domain the version is certified
	// over.
	Region vnn.RegionSpec `json:"region"`
	// Options affect the serving compile (and are part of the
	// fingerprint), exactly as for /v1/verify.
	Options QueryOptions `json:"options"`
	// Monitor, when present, builds the version's serving monitor; every
	// /v1/infer?model= request through this version then gets per-input
	// verdicts, counted per version in /metrics.
	Monitor *InferMonitorSpec `json:"monitor,omitempty"`
	// Gate overrides the server's default gate (-gate). With neither,
	// the version is admitted without analysis — recorded as ungated.
	Gate *vnn.GateSpec `json:"gate,omitempty"`
	// TimeoutMS bounds the gate run; 0 falls back to the gate's own
	// timeout_ms, then the server default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Wait true runs the gate synchronously. The default is async — a
	// 202 with the gate job id for /v1/models/{name}/events — because
	// gates run real verification workloads.
	Wait *bool `json:"wait,omitempty"`
}

// ModelSubmitResponse answers submit (terminal state), promote, rollback
// and the SSE result event: the version document plus, for completed gate
// runs, the portfolio report behind the decision.
type ModelSubmitResponse struct {
	// ID is the gate job id: poll GET /v1/models/{name}?version=N or
	// stream /v1/models/{name}/events, and fetch /debug/traces/{id}.
	ID string `json:"id"`
	vnn.ModelVersionJSON
	// Report carries the gate's findings (shared wire schema).
	Report *vnn.Report `json:"report,omitempty"`
}

// ModelPromoteRequest is the POST /v1/models/{name}/promote body.
// canary_percent in [1, 99] starts (or resizes) a canary; omitted, 0 or
// 100 cuts the version fully over. version 0 targets the newest
// admitted-or-canary version.
type ModelPromoteRequest struct {
	Version       int  `json:"version,omitempty"`
	CanaryPercent *int `json:"canary_percent,omitempty"`
}

// ModelsResponse is the GET /v1/models listing.
type ModelsResponse struct {
	Models []vnnregistry.ModelDoc `json:"models"`
}

// Registry exposes the rollout registry (tests, embedding hosts).
func (s *Server) Registry() *vnnregistry.Registry { return s.registry }

// registryStatus maps registry errors onto HTTP statuses: not-ready to
// 503 (readiness, not failure), unknown names to 404, lifecycle misuse
// to 409 — then the shared statusFor rules.
func registryStatus(err error) int {
	switch {
	case errors.Is(err, vnnregistry.ErrNotReady):
		return http.StatusServiceUnavailable
	case errors.Is(err, vnnregistry.ErrUnknownModel), errors.Is(err, vnnregistry.ErrUnknownVersion):
		return http.StatusNotFound
	case errors.Is(err, vnnregistry.ErrNoServing), errors.Is(err, vnnregistry.ErrBadTransition):
		return http.StatusConflict
	default:
		return statusFor(err)
	}
}

// registryCompile is the CompileFunc the server injects into the
// registry: the shared fingerprint-keyed singleflight cache, compiling
// under the server's lifetime context (a gate compile is shared work —
// /v1/verify requests for the same fingerprint hit it). Successful
// compiles also prime the by-fingerprint infer workload cache, so a
// version's artifact is immediately servable via plain fingerprint
// requests and exportable to fleet peers.
func (s *Server) registryCompile(ctx context.Context, fp string, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, bool, error) {
	cn, hit, err := s.cache.GetOrCompile(ctx, fp, func() (*vnn.CompiledNetwork, error) {
		compileStart := time.Now()
		cn, err := vnn.Compile(s.queryCtx, net, region, opts)
		if err == nil {
			s.obs.compileTime.Observe(int64(time.Since(compileStart)))
		}
		return cn, err
	})
	if err == nil {
		s.workloads.put(fp, &inferWorkload{net: net, region: region, compileOpts: opts})
	}
	return cn, hit, err
}

// registryBuildMonitor routes gate-time monitor builds through the same
// monitor cache as /v1/infer, so a version's serving monitor is also
// reusable by monitor_fingerprint requests and fleet replication.
func (s *Server) registryBuildMonitor(ctx context.Context, wfp string, cn *vnn.CompiledNetwork, data [][]float64, opts vnn.MonitorOptions) (*vnn.Monitor, bool, error) {
	buildStart := time.Now()
	mon, hit, err := s.monitors.getOrBuild(ctx, wfp, func() (*vnn.Monitor, error) {
		return vnn.BuildMonitor(cn, data, opts)
	})
	if err == nil && !hit {
		observeSince(s.obs.monitorBuild, buildStart)
	}
	return mon, hit, err
}

// preparedSubmit is a parsed, validated model submission.
type preparedSubmit struct {
	sub  vnnregistry.Submission
	gate *vnn.GateSpec
}

// prepareModelSubmit validates everything that can be the client's
// fault: name, network, region, gate (against the network, with the
// same per-analysis work caps as /v1/analyze) and monitor spec.
func (s *Server) prepareModelSubmit(req *ModelSubmitRequest) (*preparedSubmit, error) {
	if !modelNameRE.MatchString(req.Model) {
		return nil, fmt.Errorf("model name must match %s", modelNameRE)
	}
	if len(req.Network) == 0 {
		return nil, fmt.Errorf("request needs a network")
	}
	net, err := vnn.UnmarshalNetwork(req.Network)
	if err != nil {
		return nil, err
	}
	region, err := req.Region.Region()
	if err != nil {
		return nil, err
	}
	compileOpts := vnn.Options{Tighten: req.Options.Tighten, Workers: req.Options.Workers}
	fp, err := vnn.Fingerprint(net, region, compileOpts)
	if err != nil {
		return nil, err
	}
	gate := req.Gate
	if gate == nil {
		gate = s.cfg.DefaultGate
	}
	if gate != nil {
		if err := gate.ValidateFor(net); err != nil {
			return nil, err
		}
		for i := range gate.Analyses {
			if err := capAnalysisWork(&gate.Analyses[i]); err != nil {
				return nil, fmt.Errorf("gate analysis %d: %w", i, err)
			}
		}
	}
	sub := vnnregistry.Submission{
		Model:       req.Model,
		NetworkJSON: req.Network,
		Net:         net,
		Region:      region,
		RegionSpec:  req.Region,
		Fingerprint: fp,
		Tighten:     req.Options.Tighten,
		Workers:     req.Options.Workers,
		Gate:        gate,
	}
	if m := req.Monitor; m != nil {
		if len(m.Data) == 0 {
			return nil, fmt.Errorf("monitor needs a build dataset")
		}
		if len(m.Data) > maxMonitorData {
			return nil, fmt.Errorf("monitor dataset of %d rows exceeds the %d cap", len(m.Data), maxMonitorData)
		}
		audit := vnn.MonitorAudit{Data: m.Data, Gamma: m.Gamma, Layers: m.Layers}
		if err := audit.Validate(net); err != nil {
			return nil, err
		}
		sub.MonitorData = m.Data
		sub.MonitorOpts = vnn.MonitorOptions{Gamma: m.Gamma, Layers: m.Layers}
	}
	return &preparedSubmit{sub: sub, gate: gate}, nil
}

func (s *Server) handleModelSubmit(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req ModelSubmitRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.prepareModelSubmit(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Submission is a registry mutation: it needs a recovered registry
	// even before admission.
	if !s.registry.Ready() {
		writeError(w, http.StatusServiceUnavailable, s.registry.ReadyReason())
		return
	}
	// The gate defaults to asynchronous — it runs real verification
	// workloads — but follows the same admit-at-submit discipline as
	// /v1/verify: backpressure is immediate either way.
	async := req.Wait == nil || !*req.Wait
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if err := s.sched.Admit(); err != nil {
		s.drainMu.Unlock()
		writeError(w, statusFor(err), err.Error())
		return
	}
	if async {
		s.wg.Add(1)
	}
	s.drainMu.Unlock()

	v, err := s.registry.Submit(q.sub)
	if err != nil {
		// Undo the admission: the gate run that would release it will
		// never start.
		s.sched.cancelAdmitted()
		if async {
			s.wg.Done()
		}
		writeError(w, registryStatus(err), err.Error())
		return
	}
	xModelSubmits.Add(1)
	jb := s.jobs.create(q.sub.Fingerprint)
	s.registry.SetGateJob(v, jb.id)
	tr := s.obs.rec.Start("gate", jb.id)
	tr.Root().SetAttr("model", v.Model())
	tr.Root().SetAttr("version", v.Seq())
	tr.Root().SetAttr("fingerprint", q.sub.Fingerprint)

	if !async {
		resp, err := s.runModelGate(r.Context(), jb, tr, v, q, &req)
		if err != nil {
			writeError(w, registryStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	go func() {
		defer s.wg.Done()
		s.runModelGate(s.queryCtx, jb, tr, v, q, &req)
	}()
	writeJSON(w, http.StatusAccepted, ModelSubmitResponse{
		ID:               jb.id,
		ModelVersionJSON: s.registry.Doc(v),
	})
}

// runModelGate executes one version's admission gate under scheduler
// control, mirroring runAnalyze: queue span, fair worker share, SSE
// progress through the job, drain interruption. The lifecycle decision
// itself (admitted/rejected, persistence) belongs to the registry.
func (s *Server) runModelGate(parent context.Context, jb *job, tr *obs.Trace, v *vnnregistry.Version, q *preparedSubmit, req *ModelSubmitRequest) (*ModelSubmitResponse, error) {
	start := time.Now()
	defer tr.Finish()
	defer observeSince(s.obs.gateLatency, start)
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 && q.gate != nil {
		timeout = time.Duration(q.gate.TimeoutMS) * time.Millisecond
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		qctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		qctx, cancel = context.WithCancel(parent)
	}
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel) // drain interrupts the gate
	defer stop()

	root := tr.Root()
	queueSpan := root.Child("queue")
	var resp *ModelSubmitResponse
	err := s.sched.RunAdmitted(qctx, nil, func(ctx context.Context, fairWorkers int) error {
		queueSpan.End()
		root.SetAttr("workers", fairWorkers)
		opts := vnn.Options{Workers: req.Options.Workers, Parallel: req.Options.Parallel, MaxNodes: req.Options.MaxNodes}
		if opts.Workers == 0 {
			opts.Workers = fairWorkers
		}
		opts.Progress = func(ev vnn.Event) { jb.publish(ev) }
		res, err := s.registry.RunGate(ctx, v, vnnregistry.GateRunOptions{Opts: opts, Span: root})
		if err != nil {
			return err
		}
		resp = &ModelSubmitResponse{ID: jb.id, ModelVersionJSON: res.Doc}
		if len(res.Findings) > 0 {
			rep := vnn.NewAnalysisReport(nil, res.Findings)
			resp.Report = &rep
		}
		return nil
	})
	queueSpan.End()
	if err == nil {
		if resp.State == string(vnnregistry.StateAdmitted) {
			xModelAdmitted.Add(1)
		} else {
			xModelRejected.Add(1)
		}
	} else {
		xModelRejected.Add(1)
	}
	jb.finish(resp, err)
	return resp, err
}

func (s *Server) handleModels(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, ModelsResponse{Models: s.registry.Models()})
}

func (s *Server) handleModel(w http.ResponseWriter, r *http.Request) {
	doc, err := s.registry.Model(r.PathValue("name"))
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// handleModelEvents streams a version's gate run over SSE — the same
// job stream as /v1/verify/{id}/events, addressed by model name (and
// optional ?version=N, defaulting to the newest version).
func (s *Server) handleModelEvents(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	seq := 0
	if qv := r.URL.Query().Get("version"); qv != "" {
		n, err := strconv.Atoi(qv)
		if err != nil || n < 1 {
			writeError(w, http.StatusBadRequest, "version must be a positive integer")
			return
		}
		seq = n
	}
	if seq == 0 {
		doc, err := s.registry.Model(name)
		if err != nil {
			writeError(w, registryStatus(err), err.Error())
			return
		}
		seq = len(doc.Versions)
	}
	jobID, err := s.registry.GateJob(name, seq)
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	jb := s.jobs.get(jobID)
	if jb == nil {
		writeError(w, http.StatusNotFound, "gate job expired from the registry")
		return
	}
	s.streamJob(w, r, jb)
}

func (s *Server) handleModelPromote(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req ModelPromoteRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil && !errors.Is(err, io.EOF) {
		// An empty body is a plain full promotion.
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	pct := 100
	if req.CanaryPercent != nil {
		pct = *req.CanaryPercent
	}
	doc, err := s.registry.Promote(r.PathValue("name"), req.Version, pct)
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	xModelPromotions.Add(1)
	writeJSON(w, http.StatusOK, ModelSubmitResponse{ModelVersionJSON: doc})
}

func (s *Server) handleModelRollback(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	doc, err := s.registry.Rollback(r.PathValue("name"))
	if err != nil {
		writeError(w, registryStatus(err), err.Error())
		return
	}
	xModelRollbacks.Add(1)
	writeJSON(w, http.StatusOK, ModelSubmitResponse{ModelVersionJSON: doc})
}

// handleReadyz is the readiness half of the health split: 503 while the
// server drains or before registry recovery completes, 200 once the node
// should receive traffic. Liveness stays on /healthz, which answers 200
// throughout — a draining or recovering process is alive, just not ready.
func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining"})
		return
	}
	if reason := s.registry.ReadyReason(); reason != "" {
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": reason})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"ready": true})
}
