package vnnserver

import (
	"container/list"
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/pkg/vnn"
)

// defaultCacheEntries is the compile-cache capacity when the config
// leaves it zero. Compiled networks are a few MB for the paper's
// predictors; 64 of them fit comfortably while covering many retrain
// iterations of several networks × regions × option sets.
const defaultCacheEntries = 64

// Cache is the fingerprint-keyed LRU cache of compiled networks with
// singleflight semantics: N concurrent requests for the same fingerprint
// trigger exactly one vnn.Compile — the first requester compiles, the
// rest wait on the same entry and share the resulting CompiledNetwork
// (which is immutable and safe for concurrent queries). Failed compiles
// are not cached; the next request retries.
//
// Eviction is strict LRU over completed entries. An entry still being
// compiled is never evicted (it is by construction near the front — just
// inserted or just hit), so a capacity-1 cache still deduplicates a burst
// of identical requests.
type Cache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*list.Element
	order    *list.List // front = most recently used

	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
	bytes     atomic.Int64 // resident size of completed entries (SizeBytes)
}

// cacheEntry is one cached (or in-flight) compilation.
type cacheEntry struct {
	key   string
	ready chan struct{} // closed once cn/err are set
	cn    *vnn.CompiledNetwork
	err   error
	// bytes is the entry's size accounting (vnn.CompiledNetwork.SizeBytes),
	// written before ready closes; eviction only reads it for completed
	// entries, so the channel close orders the access.
	bytes int64
	// added timestamps the entry's insertion (the GET /v1/workloads age).
	added time.Time
}

// NewCache builds a cache holding at most capacity compiled networks
// (<= 0 means defaultCacheEntries).
func NewCache(capacity int) *Cache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &Cache{
		capacity: capacity,
		entries:  make(map[string]*list.Element),
		order:    list.New(),
	}
}

// GetOrCompile returns the compiled network cached under key, compiling
// it via compile on a miss. The bool reports whether the call was a cache
// hit (true for every waiter that joined an in-flight compile — the
// compile they did NOT perform is exactly the point). ctx bounds only
// this caller's wait: a waiter whose context fires stops waiting, but the
// in-flight compile continues for everyone else — the caller owning the
// compile runs it to completion under whatever context compile itself
// uses (the server passes its lifetime context, so only drain interrupts
// a shared compile, never one impatient client).
func (c *Cache) GetOrCompile(ctx context.Context, key string, compile func() (*vnn.CompiledNetwork, error)) (*vnn.CompiledNetwork, bool, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		e := el.Value.(*cacheEntry)
		c.order.MoveToFront(el)
		c.hits.Add(1)
		xCacheHits.Add(1)
		c.mu.Unlock()
		select {
		case <-e.ready:
			return e.cn, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), added: time.Now()}
	el := c.order.PushFront(e)
	c.entries[key] = el
	c.misses.Add(1)
	xCacheMisses.Add(1)
	c.evictLocked()
	c.mu.Unlock()

	e.cn, e.err = compile()
	if e.err == nil {
		e.bytes = e.cn.SizeBytes()
		c.bytes.Add(e.bytes)
		xCacheBytes.Add(e.bytes)
	}
	close(e.ready)
	if e.err != nil {
		// Do not cache failures: drop the entry (unless it was already
		// evicted or replaced) so the next request retries.
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == el {
			c.order.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.cn, false, e.err
}

// evictLocked drops least-recently-used completed entries until the cache
// fits its capacity. Callers hold c.mu.
func (c *Cache) evictLocked() {
	for el := c.order.Back(); el != nil && c.order.Len() > c.capacity; {
		prev := el.Prev()
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			c.order.Remove(el)
			delete(c.entries, e.key)
			c.evictions.Add(1)
			xCacheEvictions.Add(1)
			c.bytes.Add(-e.bytes)
			xCacheBytes.Add(-e.bytes)
		default:
			// Still compiling: skip. See the type comment.
		}
		el = prev
	}
}

// Keys snapshots the fingerprints of every completed entry (in-flight
// compiles are excluded: they have no artifact to export yet). This is
// the fleet plane's set enumeration.
func (c *Cache) Keys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, e.key)
			}
		default:
		}
	}
	return out
}

// cachedArtifact is one completed entry's index row — the raw material of
// GET /v1/workloads (see workloads.go).
type cachedArtifact struct {
	key   string
	bytes int64
	added time.Time
}

// entriesInfo snapshots every completed, successful entry without
// touching LRU order or hit counters.
func (c *Cache) entriesInfo() []cachedArtifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cachedArtifact, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cacheEntry)
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, cachedArtifact{key: e.key, bytes: e.bytes, added: e.added})
			}
		default:
		}
	}
	return out
}

// Peek returns the completed entry cached under key without touching
// LRU order or hit/miss counters — a read-only export lookup, not a
// serving access.
func (c *Cache) Peek(key string) (*vnn.CompiledNetwork, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	select {
	case <-e.ready:
		return e.cn, e.err == nil
	default:
		return nil, false
	}
}

// Import inserts an externally obtained compiled artifact under key,
// through the same singleflight discipline as GetOrCompile but without
// counting a miss (nothing was compiled here — that is the point of
// replication). If key is already cached or in flight the existing
// entry wins and Import reports false: a concurrent local compile and
// a remote pull collapse to one entry either way.
func (c *Cache) Import(key string, cn *vnn.CompiledNetwork) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		return false
	}
	e := &cacheEntry{key: key, ready: make(chan struct{}), cn: cn, bytes: cn.SizeBytes(), added: time.Now()}
	close(e.ready)
	c.entries[key] = c.order.PushFront(e)
	c.bytes.Add(e.bytes)
	xCacheBytes.Add(e.bytes)
	c.evictLocked()
	return true
}

// Contains reports whether key is cached, without touching LRU order.
func (c *Cache) Contains(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[key]
	return ok
}

// Len returns the number of cached (including in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}

// CacheStats is a point-in-time snapshot of cache effectiveness.
type CacheStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Size      int   `json:"size"`
	Capacity  int   `json:"capacity"`
	// Bytes is the accounted resident size of completed entries
	// (vnn.CompiledNetwork.SizeBytes summed over the cache).
	Bytes int64 `json:"bytes"`
}

// Stats snapshots the cache counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:      c.hits.Load(),
		Misses:    c.misses.Load(),
		Evictions: c.evictions.Load(),
		Size:      c.Len(),
		Capacity:  c.capacity,
		Bytes:     c.bytes.Load(),
	}
}
