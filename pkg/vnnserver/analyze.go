// POST /v1/analyze: the dependability portfolio served over HTTP. One
// request compiles (or cache-hits) a network against a region and runs
// any mix of analyses — property verification, structural coverage,
// traceability, quantization sweeps, data validation, falsification —
// through vnn.Analyze on the shared compiled artifact. Quantization
// sweeps route their per-width recompiles through the same
// fingerprint-keyed compile cache as everything else, so N concurrent
// identical sweeps still perform exactly one compile per bit-width.

package vnnserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnn"
)

// Per-request work caps. Unlike property verification — whose budget is
// the request timeout and whose anytime contract makes interruption
// useful — these analyses do open-ended iteration work, so the service
// bounds what one request can demand up front (the same hardening the
// falsify endpoint has always had).
const (
	// maxFalsifyRestarts and maxFalsifySteps bound PGD work per request,
	// for /v1/falsify and falsify-kind analyses alike.
	maxFalsifyRestarts = 1024
	maxFalsifySteps    = 10000
	// maxCoverageTests bounds one coverage analysis's sampling budget.
	maxCoverageTests = 1 << 20
	// maxSweepWidths bounds one quant sweep's ladder length (the full
	// supported range is only [2, 16] wide).
	maxSweepWidths = 32
)

// AnalyzeRequest is the POST /v1/analyze body.
type AnalyzeRequest struct {
	// Network is the canonical network JSON (see vnn.MarshalNetwork).
	Network json.RawMessage `json:"network"`
	// Region selects a named case-study region or gives an explicit box.
	Region vnn.RegionSpec `json:"region"`
	// Analyses is the portfolio batch to run on the shared compilation.
	Analyses []vnn.AnalysisSpec `json:"analyses"`
	Options  QueryOptions       `json:"options"`
	// TimeoutMS bounds the whole batch including any compiles it
	// triggers; 0 falls back to the server's default. An expired budget
	// yields anytime findings where the analysis supports them.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Wait false turns the call asynchronous: 202 plus a job id for
	// GET /v1/analyze/{id} and its /events stream.
	Wait *bool `json:"wait,omitempty"`
}

// AnalyzeResponse is the analyze answer: the shared wire Report (findings
// under "analyses", verification results also flattened into "results")
// plus service metadata about the base compile.
type AnalyzeResponse struct {
	ID          string  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	CacheHit    bool    `json:"cache_hit"`
	CompileMS   float64 `json:"compile_ms"`
	vnn.Report
}

// preparedAnalysis is a parsed, validated analyze request.
type preparedAnalysis struct {
	net         *vnn.Network
	region      *vnn.Region
	analyses    []vnn.Analysis
	kinds       []string
	fingerprint string
	compileOpts vnn.Options
}

// prepareAnalyze parses the request into engine values, validates every
// analysis against the network, and fingerprints the base compile
// workload. Everything that can be the client's fault is rejected here.
func (s *Server) prepareAnalyze(req *AnalyzeRequest) (*preparedAnalysis, error) {
	if len(req.Network) == 0 {
		return nil, fmt.Errorf("request needs a network")
	}
	net, err := vnn.UnmarshalNetwork(req.Network)
	if err != nil {
		return nil, err
	}
	region, err := req.Region.Region()
	if err != nil {
		return nil, err
	}
	if len(req.Analyses) == 0 {
		return nil, fmt.Errorf("request needs at least one analysis")
	}
	analyses := make([]vnn.Analysis, len(req.Analyses))
	kinds := make([]string, len(req.Analyses))
	for i := range req.Analyses {
		if analyses[i], err = req.Analyses[i].Analysis(); err != nil {
			return nil, fmt.Errorf("analysis %d: %w", i, err)
		}
		if err := req.Analyses[i].ValidateFor(net); err != nil {
			return nil, fmt.Errorf("analysis %d: %w", i, err)
		}
		if err := capAnalysisWork(&req.Analyses[i]); err != nil {
			return nil, fmt.Errorf("analysis %d: %w", i, err)
		}
		kinds[i] = analyses[i].Kind()
	}
	compileOpts := vnn.Options{Tighten: req.Options.Tighten, Workers: req.Options.Workers}
	fp, err := vnn.Fingerprint(net, region, compileOpts)
	if err != nil {
		return nil, err
	}
	return &preparedAnalysis{
		net:         net,
		region:      region,
		analyses:    analyses,
		kinds:       kinds,
		fingerprint: fp,
		compileOpts: compileOpts,
	}, nil
}

// capAnalysisWork enforces the service's per-request work bounds on one
// analysis spec (see the max* constants).
func capAnalysisWork(spec *vnn.AnalysisSpec) error {
	switch spec.Kind {
	case vnn.KindFalsify:
		if spec.Restarts > maxFalsifyRestarts || spec.Steps > maxFalsifySteps {
			return fmt.Errorf("restarts must be in [0, %d] and steps in [0, %d]",
				maxFalsifyRestarts, maxFalsifySteps)
		}
	case vnn.KindCoverage:
		if spec.MaxTests > maxCoverageTests {
			return fmt.Errorf("max_tests must be at most %d", maxCoverageTests)
		}
	case vnn.KindQuantSweep:
		if len(spec.Bits) > maxSweepWidths {
			return fmt.Errorf("a sweep may request at most %d bit-widths", maxSweepWidths)
		}
	}
	return nil
}

func (s *Server) handleAnalyze(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req AnalyzeRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.prepareAnalyze(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Same admission discipline as /v1/verify: the token is taken at
	// submit time under drainMu, so overload is immediate backpressure
	// and a request is never admitted after Drain stopped waiting.
	async := req.Wait != nil && !*req.Wait
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if err := s.sched.Admit(); err != nil {
		s.drainMu.Unlock()
		writeError(w, statusFor(err), err.Error())
		return
	}
	if async {
		s.wg.Add(1)
	}
	s.drainMu.Unlock()
	jb := s.jobs.create(q.fingerprint)
	// Trace id = job id, same as /v1/verify (see handleVerify).
	tr := s.startTrace(r, "/v1/analyze", jb.id)
	tr.Root().SetAttr("fingerprint", q.fingerprint)
	tr.Root().SetAttr("analyses", len(q.analyses))
	tn := s.tenantFor(r)

	if !async {
		resp, err := s.runAnalyze(r.Context(), jb, tr, tn, q, &req)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	go func() {
		defer s.wg.Done()
		s.runAnalyze(s.queryCtx, jb, tr, tn, q, &req)
	}()
	writeJSON(w, http.StatusAccepted, AcceptedResponse{
		ID: jb.id, Fingerprint: q.fingerprint, Status: "running",
	})
}

// runAnalyze executes one prepared portfolio batch under admission
// control. The base compile — and every quantized recompile a QuantSweep
// performs — goes through the fingerprint-keyed cache under the server's
// lifetime context: compiles are shared work that only drain interrupts,
// never one impatient client.
func (s *Server) runAnalyze(parent context.Context, jb *job, tr *obs.Trace, tn *obs.TenantStats, q *preparedAnalysis, req *AnalyzeRequest) (*AnalyzeResponse, error) {
	start := time.Now()
	defer tr.Finish()
	defer observeSince(s.obs.analyzeLatency, start)
	defer func() { tn.Route("/v1/analyze").Count(time.Since(start)) }()
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		qctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		qctx, cancel = context.WithCancel(parent)
	}
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel) // drain interrupts the batch
	defer stop()

	root := tr.Root()
	queueSpan := root.Child("queue")
	var resp *AnalyzeResponse
	err := s.sched.RunAdmitted(qctx, tn, func(ctx context.Context, fairWorkers int) error {
		queueSpan.End()
		root.SetAttr("workers", fairWorkers)
		opts := q.compileOpts
		if opts.Workers == 0 {
			opts.Workers = fairWorkers
		}
		cacheSpan := root.Child("cache")
		cn, hit, err := s.cache.GetOrCompile(ctx, q.fingerprint, func() (*vnn.CompiledNetwork, error) {
			return s.compileTraced(cacheSpan, q.net, q.region, opts)
		})
		cacheSpan.SetAttr("hit", hit)
		cacheSpan.End()
		if err != nil {
			return err
		}
		qopts := opts
		qopts.Parallel = req.Options.Parallel
		qopts.MaxNodes = req.Options.MaxNodes
		// The solve span covers the whole portfolio; each analysis that
		// streams solver progress contributes per-property children with
		// their analysis index attributed (see vnn.ProgressSpans).
		solveSpan := root.Child("solve")
		ps := vnn.NewProgressSpans(solveSpan)
		qopts.Progress = func(ev vnn.Event) {
			jb.publish(ev)
			ps.Observe(ev)
		}
		for _, a := range q.analyses {
			if qs, ok := a.(*vnn.QuantSweep); ok {
				qs.Compile = s.cachedCompile
			}
		}
		findings, err := vnn.Analyze(ctx, cn.WithOptions(qopts), q.analyses...)
		ps.Close()
		if err != nil {
			solveSpan.End()
			return err
		}
		var nodes, pivots int64
		for _, f := range findings {
			for _, res := range f.Verification {
				nodes += int64(res.Stats.Nodes)
				pivots += int64(res.Stats.LPPivots)
			}
			if f.QuantSweep != nil {
				for _, res := range f.QuantSweep.Base {
					nodes += int64(res.Stats.Nodes)
					pivots += int64(res.Stats.LPPivots)
				}
				for _, pt := range f.QuantSweep.Points {
					for _, res := range pt.Results {
						nodes += int64(res.Stats.Nodes)
						pivots += int64(res.Stats.LPPivots)
					}
				}
			}
		}
		s.nodes.Add(nodes)
		s.pivots.Add(pivots)
		xNodes.Add(nodes)
		xLPPivots.Add(pivots)
		resp = &AnalyzeResponse{
			ID:          jb.id,
			Fingerprint: q.fingerprint,
			CacheHit:    hit,
			CompileMS:   float64(cn.CompileTime().Microseconds()) / 1e3,
			Report:      vnn.NewAnalysisReport(q.net, findings),
		}
		return nil
	})
	s.analyzes.Add(1)
	xAnalyzes.Add(1)
	if err == nil {
		// Per-kind accounting happens once per completed batch so the
		// counters mean "analyses served", not "analyses attempted".
		for _, kind := range q.kinds {
			s.countAnalysis(kind)
		}
	}
	jb.finish(resp, err)
	return resp, err
}

// cachedCompile is the CompileFunc the server injects into quantization
// sweeps: share one compile per distinct quantized model through the
// LRU/singleflight cache, keyed on the fingerprint the sweep already
// computed for its finding.
func (s *Server) cachedCompile(ctx context.Context, fp string, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, error) {
	copts := vnn.Options{Tighten: opts.Tighten, Workers: opts.Workers}
	cn, _, err := s.cache.GetOrCompile(ctx, fp, func() (*vnn.CompiledNetwork, error) {
		return vnn.Compile(s.queryCtx, net, region, copts)
	})
	return cn, err
}
