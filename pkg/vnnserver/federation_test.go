// Federation-plane tests: /v1/fleet/metrics merging two live nodes
// (exact counter sums, bucket-wise histogram merges, tenant union),
// peer-failure degradation, trace fetch-through, and the per-tenant
// cardinality cap enforced over HTTP.

package vnnserver_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// postVerifyKeyed POSTs a verify request with a tenant API key.
func postVerifyKeyed(t *testing.T, url, key string, body []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/verify", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("X-API-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("verify with key %q: status %d", key, resp.StatusCode)
	}
}

// getFleetMetrics fetches and decodes one node's federated document.
func getFleetMetrics(t *testing.T, url string) vnnserver.FleetMetrics {
	t.Helper()
	resp, err := http.Get(url + "/v1/fleet/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet metrics: status %d", resp.StatusCode)
	}
	var fm vnnserver.FleetMetrics
	if err := json.NewDecoder(resp.Body).Decode(&fm); err != nil {
		t.Fatal(err)
	}
	return fm
}

// findHistogram locates one (name, route) entry in a wire-form list.
func findHistogram(hs []obs.HistogramJSON, name, route string) *obs.HistogramJSON {
	for i := range hs {
		if hs[i].Name == name && hs[i].Route == route {
			return &hs[i]
		}
	}
	return nil
}

// TestFleetMetricsFederation is the federation plane's arithmetic
// contract, pinned against two live nodes: the aggregate's counters
// are the EXACT sum of the per-node blocks, its histograms the
// bucket-wise sum, and its tenant map the label-wise union.
func TestFleetMetricsFederation(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)

	_, tsB := newTestServer(t, vnnserver.Config{NodeID: "b"})
	_, tsA := newTestServer(t, vnnserver.Config{NodeID: "a", Peers: []string{tsB.URL}})

	// Known traffic: 2 keyed verifies on A, 1 keyed + 1 anonymous on B.
	postVerifyKeyed(t, tsA.URL, "acme", body)
	postVerifyKeyed(t, tsA.URL, "acme", body)
	postVerifyKeyed(t, tsB.URL, "acme", body)
	postVerifyKeyed(t, tsB.URL, "", body)

	fm := getFleetMetrics(t, tsA.URL)
	if fm.Node != "a" {
		t.Fatalf("federated document node = %q, want a", fm.Node)
	}
	if len(fm.Errors) != 0 {
		t.Fatalf("unexpected peer errors: %v", fm.Errors)
	}
	ma, okA := fm.Nodes["a"]
	mb, okB := fm.Nodes["b"]
	if !okA || !okB {
		t.Fatalf("nodes map keys = %v, want a and b", keysOf(fm.Nodes))
	}
	if ma.Queries != 2 || mb.Queries != 2 {
		t.Fatalf("per-node queries = %d/%d, want 2/2", ma.Queries, mb.Queries)
	}

	// Counters sum exactly.
	if fm.Aggregate.Queries != ma.Queries+mb.Queries {
		t.Fatalf("aggregate queries = %d, want %d", fm.Aggregate.Queries, ma.Queries+mb.Queries)
	}
	if fm.Aggregate.Cache.Misses != ma.Cache.Misses+mb.Cache.Misses {
		t.Fatalf("aggregate cache misses = %d, want %d",
			fm.Aggregate.Cache.Misses, ma.Cache.Misses+mb.Cache.Misses)
	}

	// Histograms merge bucket-wise: every bucket of the aggregate's
	// verify-latency entry equals the sum of the per-node buckets.
	const reqDur = "vnnd_request_duration_seconds"
	ha := findHistogram(ma.Histograms, reqDur, "/v1/verify")
	hb := findHistogram(mb.Histograms, reqDur, "/v1/verify")
	hagg := findHistogram(fm.Aggregate.Histograms, reqDur, "/v1/verify")
	if ha == nil || hb == nil || hagg == nil {
		t.Fatal("verify latency histogram missing from a node or the aggregate")
	}
	if hagg.Count != 4 || hagg.Count != ha.Count+hb.Count {
		t.Fatalf("aggregate count = %d, want %d+%d = 4", hagg.Count, ha.Count, hb.Count)
	}
	if hagg.Sum != ha.Sum+hb.Sum {
		t.Fatalf("aggregate sum = %d, want %d", hagg.Sum, ha.Sum+hb.Sum)
	}
	for i := range hagg.Buckets {
		want := ha.Buckets[i] + hb.Buckets[i]
		if hagg.Buckets[i] != want {
			t.Fatalf("aggregate bucket %d = %d, want %d", i, hagg.Buckets[i], want)
		}
	}

	// Tenants merge label-wise across nodes.
	acme := fm.Aggregate.Tenants["acme"]
	if got := acme.Routes["/v1/verify"].Requests; got != 3 {
		t.Fatalf("aggregate acme verify requests = %d, want 3", got)
	}
	if got := fm.Aggregate.Tenants["anonymous"].Routes["/v1/verify"].Requests; got != 1 {
		t.Fatalf("aggregate anonymous verify requests = %d, want 1", got)
	}
	if got := acme.Routes["/v1/verify"].Latency.Count; got != 3 {
		t.Fatalf("aggregate acme latency count = %d, want 3", got)
	}

	// The Prometheus rendering of the aggregate negotiates like /metrics.
	resp, err := http.Get(tsA.URL + "/v1/fleet/metrics?format=prometheus")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Fatalf("prom federation Content-Type = %q", ct)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), "vnnd_queries_total 4") {
		t.Fatal("prom federation rendering missing the summed vnnd_queries_total 4")
	}
	if !strings.Contains(string(raw), `vnnd_tenant_requests_total{tenant="acme",route="/v1/verify"} 3`) {
		t.Fatal("prom federation rendering missing the merged acme tenant series")
	}
}

// TestFleetMetricsPeerDown: an unreachable peer degrades to an entry
// in "errors"; the local block and aggregate still render.
func TestFleetMetricsPeerDown(t *testing.T) {
	dead := "http://127.0.0.1:1" // reserved port, nothing listens
	_, ts := newTestServer(t, vnnserver.Config{NodeID: "solo", Peers: []string{dead}})
	fm := getFleetMetrics(t, ts.URL)
	if len(fm.Nodes) != 1 || fm.Nodes["solo"].Node != "solo" {
		t.Fatalf("nodes = %v, want just solo", keysOf(fm.Nodes))
	}
	if fm.Errors[dead] == "" {
		t.Fatalf("dead peer not reported in errors: %v", fm.Errors)
	}
}

// TestTraceFetchThrough: a trace recorded only on node B resolves
// through node A's /debug/traces/{id} by one-hop peer fetch — by W3C
// trace id and by job id — while ?local=1 stays a 404.
func TestTraceFetchThrough(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)

	_, tsB := newTestServer(t, vnnserver.Config{NodeID: "b"})
	_, tsA := newTestServer(t, vnnserver.Config{NodeID: "a", Peers: []string{tsB.URL}})

	var vr vnnserver.VerifyResponse
	if status := postVerify(t, tsB.URL, body, &vr); status != http.StatusOK {
		t.Fatalf("verify on b: status %d", status)
	}
	local := getTrace(t, tsB.URL, vr.ID)
	if local.TraceID == "" || local.Node != "b" {
		t.Fatalf("trace on b: trace_id=%q node=%q", local.TraceID, local.Node)
	}

	for _, id := range []string{local.TraceID, vr.ID} {
		through := getTrace(t, tsA.URL, id)
		if through.TraceID != local.TraceID || through.Node != "b" {
			t.Fatalf("fetch-through by %q: trace_id=%q node=%q, want %q on b",
				id, through.TraceID, through.Node, local.TraceID)
		}
	}

	// The loop guard: ?local=1 keeps A from asking its peers.
	resp, err := http.Get(tsA.URL + "/debug/traces/" + local.TraceID + "?local=1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("?local=1 fetch on a: status %d, want 404", resp.StatusCode)
	}
}

// TestTenantCardinalityHTTP pins the cap end to end: many distinct
// API keys against a TenantCap-4 server leave exactly cap+1 label
// values in /metrics, with every request accounted for.
func TestTenantCardinalityHTTP(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)

	const cap = 4
	srv, ts := newTestServer(t, vnnserver.Config{TenantCap: cap})
	const total = 12
	for i := 0; i < total; i++ {
		postVerifyKeyed(t, ts.URL, fmt.Sprintf("key-%02d", i), body)
	}

	m := srv.Metrics()
	if len(m.Tenants) != cap+1 {
		t.Fatalf("tenant labels = %d (%v), want cap+1 = %d", len(m.Tenants), keysOf(m.Tenants), cap+1)
	}
	other, ok := m.Tenants["other"]
	if !ok {
		t.Fatalf("overflow tenant missing: %v", keysOf(m.Tenants))
	}
	var sum int64
	for _, tn := range m.Tenants {
		sum += tn.Routes["/v1/verify"].Requests
	}
	if sum != total {
		t.Fatalf("tenant-attributed requests = %d, want %d", sum, total)
	}
	if got := other.Routes["/v1/verify"].Requests; got != total-cap {
		t.Fatalf("overflow requests = %d, want %d", got, total-cap)
	}
	// Queue waits are attributed too: every request waited (possibly
	// zero time) exactly once.
	var waits int64
	for _, tn := range m.Tenants {
		waits += tn.QueueWait.Count
	}
	if waits != total {
		t.Fatalf("tenant queue-wait observations = %d, want %d", waits, total)
	}
}

// keysOf lists a string-keyed map's keys for failure messages.
func keysOf[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}
