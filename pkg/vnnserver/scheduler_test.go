package vnnserver

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// TestSchedulerBackpressure pins admission semantics: one query runs, one
// waits, the next is rejected immediately with ErrQueueFull.
func TestSchedulerBackpressure(t *testing.T) {
	s := NewScheduler(1, 1) // 1 running + 1 queued
	ctx := context.Background()

	running := make(chan struct{})
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx, nil, func(context.Context, int) error {
			close(running)
			<-release
			return nil
		})
	}()
	<-running

	queuedStarted := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx, nil, func(context.Context, int) error {
			close(queuedStarted)
			return nil
		})
	}()
	// Wait for the second query to be counted as queued.
	for i := 0; s.Stats().Queued != 1; i++ {
		if i > 1000 {
			t.Fatal("second query never queued")
		}
		time.Sleep(time.Millisecond)
	}

	// Queue is now full: a third query bounces without blocking.
	if err := s.Run(ctx, nil, func(context.Context, int) error { return nil }); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third query err = %v, want ErrQueueFull", err)
	}
	if got := s.Stats().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}

	close(release)
	<-queuedStarted // FIFO handoff: the queued query runs once the slot frees
	wg.Wait()
	st := s.Stats()
	if st.Active != 0 || st.Queued != 0 || st.Completed != 2 {
		t.Fatalf("final stats %+v", st)
	}
}

// TestSchedulerFairShare pins the worker-budget division: a lone query
// receives the whole core budget; with two in flight each receives half
// (floored at 1).
func TestSchedulerFairShare(t *testing.T) {
	s := NewScheduler(2, 2)
	s.cores = 8 // fix the budget regardless of the test machine
	ctx := context.Background()

	var solo int
	if err := s.Run(ctx, nil, func(_ context.Context, workers int) error {
		solo = workers
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if solo != 8 {
		t.Fatalf("solo query got %d workers, want all 8", solo)
	}

	first := make(chan int, 1)
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx, nil, func(_ context.Context, workers int) error {
			first <- workers
			<-release
			return nil
		})
	}()
	w1 := <-first // first query admitted alone: full budget

	var w2 int
	wg.Add(1)
	go func() {
		defer wg.Done()
		s.Run(ctx, nil, func(_ context.Context, workers int) error {
			w2 = workers
			close(release)
			return nil
		})
	}()
	wg.Wait()

	if w1 != 8 {
		t.Fatalf("first concurrent query got %d workers, want 8", w1)
	}
	if w2 != 4 {
		t.Fatalf("second concurrent query got %d workers, want fair share 4", w2)
	}
}

// TestSchedulerQueuedCancellation pins that a query abandoned while
// waiting for a slot returns its context error without ever running.
func TestSchedulerQueuedCancellation(t *testing.T) {
	s := NewScheduler(1, 1)
	running := make(chan struct{})
	release := make(chan struct{})
	go s.Run(context.Background(), nil, func(context.Context, int) error {
		close(running)
		<-release
		return nil
	})
	<-running
	defer close(release)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := s.Run(ctx, nil, func(context.Context, int) error { ran = true; return nil })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("cancelled query ran anyway")
	}
	if got := s.Stats().Queued; got != 0 {
		t.Fatalf("queued leaked: %d", got)
	}
}
