// GET /debug/traces and /debug/traces/{id}: the flight recorder's HTTP
// surface. The list shows the most recent completed traces (ring order,
// newest first) plus the always-retained slowest traces per route; the
// by-id endpoint returns one full span tree. Trace ids for /v1/verify
// and /v1/analyze are the job ids those responses echo, so a client can
// go from a slow response straight to its trace.
//
// Distributed traces: a trace that crossed nodes (fleet pulls carry a
// traceparent header — see pkg/vnnfleet) leaves one segment per node,
// all sharing the W3C trace id. /debug/traces/{id} merges them: local
// sibling segments come from the recorder, remote ones are fetched
// through each configured peer (bounded, one hop — the ?local=1 guard
// stops peers from fanning out in turn).

package vnnserver

import (
	"context"
	"encoding/json"
	"net/http"
	"strconv"
	"strings"
	"sync"

	"repro/internal/obs"
)

// tracesIndex is the GET /debug/traces document.
type tracesIndex struct {
	Recent  []obs.TraceSummary            `json:"recent"`
	Slowest map[string][]obs.TraceSummary `json:"slowest"`
}

// handleTraces lists recent and slowest traces. ?route= keeps only one
// route's traces; ?limit= caps the recent list (newest first — the
// recorder ring is already in that order).
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	idx := tracesIndex{Recent: s.obs.rec.Recent(), Slowest: s.obs.rec.Slowest()}
	if route := r.URL.Query().Get("route"); route != "" {
		kept := idx.Recent[:0]
		for _, t := range idx.Recent {
			if t.Route == route {
				kept = append(kept, t)
			}
		}
		idx.Recent = kept
		if sl, ok := idx.Slowest[route]; ok {
			idx.Slowest = map[string][]obs.TraceSummary{route: sl}
		} else {
			idx.Slowest = map[string][]obs.TraceSummary{}
		}
	}
	if lim := r.URL.Query().Get("limit"); lim != "" {
		n, err := strconv.Atoi(lim)
		if err != nil || n < 0 {
			writeError(w, http.StatusBadRequest, "limit must be a non-negative integer")
			return
		}
		if n < len(idx.Recent) {
			idx.Recent = idx.Recent[:n]
		}
	}
	if idx.Recent == nil {
		idx.Recent = []obs.TraceSummary{}
	}
	if idx.Slowest == nil {
		idx.Slowest = map[string][]obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, idx)
}

// handleTrace serves one trace by job id or hex trace id. Lookup order:
// local primary trace, then local segments of a distributed trace,
// then (unless ?local=1) a one-hop fetch through the fleet peers.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	localOnly := r.URL.Query().Get("local") == "1"

	if t := s.obs.rec.Get(id); t != nil {
		doc := t.JSON()
		s.attachSegments(r.Context(), &doc, t, localOnly)
		writeJSON(w, http.StatusOK, doc)
		return
	}
	// No primary trace here, but this node may hold segments of a
	// distributed trace (e.g. the export side of a fleet pull).
	if segs := s.obs.rec.Segments(id); len(segs) > 0 {
		doc := segs[0].JSON()
		for _, t := range segs[1:] {
			doc.Segments = append(doc.Segments, t.JSON())
		}
		if !localOnly {
			doc.Segments = append(doc.Segments, s.peerSegments(r.Context(), doc.TraceID, doc.SpanID)...)
		}
		writeJSON(w, http.StatusOK, doc)
		return
	}
	if !localOnly {
		if doc, ok := s.peerTrace(r.Context(), id); ok {
			writeJSON(w, http.StatusOK, doc)
			return
		}
	}
	writeError(w, http.StatusNotFound, "unknown trace id (evicted from the ring, or never traced)")
}

// attachSegments fills doc.Segments with the trace's other local
// segments and (unless localOnly) every peer-held segment.
func (s *Server) attachSegments(ctx context.Context, doc *obs.TraceJSON, primary *obs.Trace, localOnly bool) {
	for _, t := range s.obs.rec.Segments(doc.TraceID) {
		if t == primary {
			continue
		}
		doc.Segments = append(doc.Segments, t.JSON())
	}
	if !localOnly {
		doc.Segments = append(doc.Segments, s.peerSegments(ctx, doc.TraceID, doc.SpanID)...)
	}
}

// peerSegments asks every configured peer for its local segments of
// trace id, concurrently and bounded by fleetFetchTimeout. Unreachable
// peers are skipped — a partial tree beats no tree. skipSpan drops a
// peer's copy of the segment already serving as the document root.
func (s *Server) peerSegments(ctx context.Context, id, skipSpan string) []obs.TraceJSON {
	if len(s.cfg.Peers) == 0 || id == "" {
		return nil
	}
	ctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
	defer cancel()
	var mu sync.Mutex
	var out []obs.TraceJSON
	var wg sync.WaitGroup
	for _, base := range s.cfg.Peers {
		wg.Add(1)
		go func(base string) {
			defer wg.Done()
			doc, ok := fetchPeerTrace(ctx, base, id)
			if !ok {
				return
			}
			segs := append([]obs.TraceJSON{doc}, doc.Segments...)
			doc.Segments = nil
			mu.Lock()
			for _, seg := range segs {
				if seg.SpanID != "" && seg.SpanID == skipSpan {
					continue
				}
				seg.Segments = nil
				out = append(out, seg)
			}
			mu.Unlock()
		}(base)
	}
	wg.Wait()
	return out
}

// peerTrace resolves a trace this node knows nothing about by asking
// the peers (one hop). The first peer with an answer wins; its document
// is served as-is, with this node contributing nothing.
func (s *Server) peerTrace(ctx context.Context, id string) (obs.TraceJSON, bool) {
	ctx, cancel := context.WithTimeout(ctx, fleetFetchTimeout)
	defer cancel()
	for _, base := range s.cfg.Peers {
		if doc, ok := fetchPeerTrace(ctx, base, id); ok {
			return doc, true
		}
	}
	return obs.TraceJSON{}, false
}

// fetchPeerTrace fetches one peer's local view of a trace. ?local=1
// keeps the peer from fanning out to ITS peers: fetch-through is
// one hop deep by construction.
func fetchPeerTrace(ctx context.Context, base, id string) (obs.TraceJSON, bool) {
	var doc obs.TraceJSON
	body, err := fleetGet(ctx, strings.TrimSuffix(base, "/")+"/debug/traces/"+id+"?local=1")
	if err != nil {
		return doc, false
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		return doc, false
	}
	return doc, doc.TraceID != ""
}
