// GET /debug/traces and /debug/traces/{id}: the flight recorder's HTTP
// surface. The list shows the most recent completed traces (ring order,
// newest first) plus the always-retained slowest traces per route; the
// by-id endpoint returns one full span tree. Trace ids for /v1/verify
// and /v1/analyze are the job ids those responses echo, so a client can
// go from a slow response straight to its trace.

package vnnserver

import (
	"net/http"

	"repro/internal/obs"
)

// tracesIndex is the GET /debug/traces document.
type tracesIndex struct {
	Recent  []obs.TraceSummary            `json:"recent"`
	Slowest map[string][]obs.TraceSummary `json:"slowest"`
}

func (s *Server) handleTraces(w http.ResponseWriter, _ *http.Request) {
	idx := tracesIndex{Recent: s.obs.rec.Recent(), Slowest: s.obs.rec.Slowest()}
	if idx.Recent == nil {
		idx.Recent = []obs.TraceSummary{}
	}
	if idx.Slowest == nil {
		idx.Slowest = map[string][]obs.TraceSummary{}
	}
	writeJSON(w, http.StatusOK, idx)
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	t := s.obs.rec.Get(r.PathValue("id"))
	if t == nil {
		writeError(w, http.StatusNotFound, "unknown trace id (evicted from the ring, or never traced)")
		return
	}
	writeJSON(w, http.StatusOK, t.JSON())
}
