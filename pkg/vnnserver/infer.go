// POST /v1/infer: the online inference plane. Where /v1/verify asks
// questions about a network, /v1/infer *runs* it under supervision: a
// batch of inputs comes back as predictions plus, when requested, a
// per-input runtime-monitor verdict flagging out-of-pattern inputs before
// their predictions are trusted (the paper's operation-time pillar).
//
// The endpoint is built for latency, not search:
//
//   - No scheduler queue and no SSE jobs — a forward pass is microseconds,
//     so requests run inline on their handler goroutine; only Drain and
//     the request context interrupt them.
//   - Batches are sharded across a fixed set of per-core serving lanes
//     (Config.InferWorkers, default GOMAXPROCS). Each shard owns its
//     scratch outright — no sync.Pool contention — and runs the batched
//     kernels (nn.ForwardBatchInto / vnn.Monitor.CheckBatchInto), which
//     are allocation-free in steady state. Sharding cannot change bits:
//     every output is produced in the fixed kernel accumulation order
//     regardless of how the batch is split (see DESIGN.md "Kernel
//     layer"), so predictions are bit-identical to nn.ForwardInto and
//     deterministic across worker counts.
//   - Clients that re-serve a warm workload skip the network upload
//     entirely: every response echoes the workload fingerprint (and the
//     monitor fingerprint), and a follow-up request may carry just
//     "fingerprint" — plus "monitor_fingerprint" for monitored inference
//     — to run against the cached artifacts. That removes the dominant
//     per-request cost (re-parsing the network JSON) from the hot path.
//   - Artifacts are cached and deduplicated exactly like compiles: the
//     monitor's bounds cross-check needs the compiled network, which
//     routes through the fingerprint-keyed compile cache (singleflight),
//     and built monitors live in their own fingerprint-keyed LRU, so N
//     concurrent identical monitored-infer requests build one monitor
//     over one compile.

package vnnserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/pkg/vnn"
	"repro/pkg/vnnregistry"
)

const (
	// maxInferBatch bounds the inputs one request may carry.
	maxInferBatch = 4096
	// maxMonitorData bounds the monitor-build dataset one request may
	// carry (builds are cached, so this is paid once per distinct
	// monitor workload).
	maxMonitorData = 1 << 16
	// inferCancelStride is how many inputs are evaluated between
	// context checks (one batched-kernel chunk): batches notice drain
	// promptly without paying a per-input atomic load.
	inferCancelStride = 256
	// minShardChunk is the smallest per-shard slice worth a goroutine
	// handoff: below it, the microseconds-per-input forward is cheaper
	// than the scheduling, so small batches run on one shard.
	minShardChunk = 64
)

// errUnknownFingerprint marks a by-fingerprint request whose artifact is
// not cached; the handler answers 404 so the client re-sends the full
// workload once.
var errUnknownFingerprint = errors.New("fingerprint not cached")

// InferMonitorSpec asks for runtime monitoring of an infer batch: a
// monitor is built (or fetched from the monitor cache) from Data over the
// request's compiled network and checks every input.
type InferMonitorSpec struct {
	// Data is the build dataset (e.g. the training set).
	Data FloatMatrix `json:"data"`
	// Gamma is the Hamming relaxation; 0 means exact-match monitoring.
	Gamma int `json:"gamma,omitempty"`
	// Layers selects monitored hidden ReLU layers; nil means all.
	Layers []int `json:"layers,omitempty"`
}

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	// Model serves through the verified-rollout registry instead of a
	// client-supplied workload: the request routes deterministically to
	// the model's live or canary version (see vnnregistry.Resolve) and
	// runs under that version's certified artifact and monitor. Also
	// settable as the ?model= query parameter (they must agree when both
	// are present). Mutually exclusive with Network, Fingerprint,
	// Monitor and MonitorFingerprint — the registry owns artifact
	// selection for routed requests.
	Model string `json:"model,omitempty"`
	// Network is the canonical network JSON (see vnn.MarshalNetwork).
	// It may be omitted when Fingerprint names a workload this server
	// has already seen — the cached network, region and options are
	// reused, skipping the per-request network parse.
	Network json.RawMessage `json:"network,omitempty"`
	// Fingerprint names a previously served (network, region, options)
	// workload — the value echoed in an earlier InferResponse. With a
	// Network present it is cross-checked; alone it resolves the cached
	// workload (404 if evicted).
	Fingerprint string `json:"fingerprint,omitempty"`
	// Region is the operational design domain the network was certified
	// over; the monitor's static cross-check runs against its compiled
	// bounds. Ignored when Fingerprint resolves a cached workload.
	Region vnn.RegionSpec `json:"region,omitempty"`
	// Inputs is the batch to evaluate.
	Inputs FloatMatrix `json:"inputs"`
	// Monitor, when present, requests per-input runtime verdicts.
	Monitor *InferMonitorSpec `json:"monitor,omitempty"`
	// MonitorFingerprint requests monitored inference through a monitor
	// this server already built — the monitor_fingerprint echoed in an
	// earlier response. Mutually exclusive with Monitor; requires the
	// workload (Network or Fingerprint) the monitor was built against.
	MonitorFingerprint string `json:"monitor_fingerprint,omitempty"`
	// Options affect only the compile the monitor cross-checks against
	// (Tighten tightens the bounds patterns are validated by); they are
	// part of the fingerprint exactly as for /v1/verify.
	Options QueryOptions `json:"options"`
	// TimeoutMS bounds the whole request including any compile or
	// monitor build it triggers; 0 falls back to the server's default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// VerdictJSON is the wire form of one monitor verdict.
type VerdictJSON struct {
	OK bool `json:"ok"`
	// Layer and Distance locate the verdict: on rejection, the first
	// monitored layer whose Hamming distance exceeded gamma; on
	// acceptance, the layer with the largest admissible distance.
	Layer    int `json:"layer"`
	Distance int `json:"distance"`
}

// InferResponse is the infer answer: predictions in input order, plus
// monitor verdicts when monitoring was requested.
type InferResponse struct {
	// Fingerprint identifies the (network, region, options) workload;
	// CacheHit reports whether the monitored path reused a cached compile.
	Fingerprint string `json:"fingerprint"`
	CacheHit    bool   `json:"cache_hit"`
	// Model, ModelVersion and Route identify the registry version that
	// served a ?model= request; Route is "live" or "canary".
	Model        string `json:"model,omitempty"`
	ModelVersion int    `json:"model_version,omitempty"`
	Route        string `json:"route,omitempty"`
	// MonitorFingerprint is the content hash of the monitor that checked
	// this batch; MonitorCacheHit reports whether it was reused.
	MonitorFingerprint string `json:"monitor_fingerprint,omitempty"`
	MonitorCacheHit    bool   `json:"monitor_cache_hit,omitempty"`
	// MonitorPatterns and MonitorRejected echo the monitor build: stored
	// patterns, and dataset patterns rejected as statically unreachable.
	MonitorPatterns int `json:"monitor_patterns,omitempty"`
	MonitorRejected int `json:"monitor_rejected,omitempty"`
	// Outputs[i] is the raw network output for Inputs[i], bit-identical
	// to nn.ForwardInto (the serving kernels; within documented
	// tolerance of nn.Forward — see DESIGN.md "Kernel layer").
	Outputs FloatMatrix `json:"outputs"`
	// Verdicts[i] classifies Inputs[i]; nil without a monitor.
	Verdicts []VerdictJSON `json:"verdicts,omitempty"`
	// Flagged counts out-of-pattern inputs in this batch.
	Flagged int `json:"flagged"`
}

// preparedInfer is a parsed, validated infer request.
type preparedInfer struct {
	net         *vnn.Network
	region      *vnn.Region
	fingerprint string
	compileOpts vnn.Options
	monitorFP   string
	monitorOpts vnn.MonitorOptions
	// monitorContentFP is set for by-fingerprint monitored requests: the
	// content hash of an already-built monitor to serve through.
	monitorContentFP string
}

// prepareModelInfer validates and routes a registry-served infer request:
// the model name resolves through the atomically-published route table to
// a certified version whose compiled artifact and monitor are already
// warm. Registry sentinel errors pass through for status mapping
// (registryStatus); everything else is the client's fault.
func (s *Server) prepareModelInfer(req *InferRequest, name string) (*preparedInfer, *vnnregistry.Resolved, error) {
	if len(req.Network) > 0 || req.Fingerprint != "" || req.Monitor != nil || req.MonitorFingerprint != "" {
		return nil, nil, fmt.Errorf("a model request routes through the registry: network, fingerprint and monitor fields must be empty")
	}
	if len(req.Inputs) == 0 {
		return nil, nil, fmt.Errorf("request needs at least one input")
	}
	if len(req.Inputs) > maxInferBatch {
		return nil, nil, fmt.Errorf("batch of %d inputs exceeds the %d cap", len(req.Inputs), maxInferBatch)
	}
	sv, err := s.registry.Resolve(name, req.Inputs)
	if err != nil {
		return nil, nil, err
	}
	net := sv.CN.Net()
	dim := net.InputDim()
	for i, x := range req.Inputs {
		if len(x) != dim {
			return nil, nil, fmt.Errorf("input %d has dimension %d, network input %d", i, len(x), dim)
		}
	}
	return &preparedInfer{net: net, region: sv.CN.Region(), fingerprint: sv.Version.Fingerprint()}, sv, nil
}

// prepareInfer validates everything that can be the client's fault.
func (s *Server) prepareInfer(req *InferRequest) (*preparedInfer, error) {
	q := &preparedInfer{}
	switch {
	case len(req.Network) > 0:
		net, err := vnn.UnmarshalNetwork(req.Network)
		if err != nil {
			return nil, err
		}
		region, err := req.Region.Region()
		if err != nil {
			return nil, err
		}
		q.net, q.region = net, region
		q.compileOpts = vnn.Options{Tighten: req.Options.Tighten, Workers: req.Options.Workers}
		fp, err := vnn.Fingerprint(net, region, q.compileOpts)
		if err != nil {
			return nil, err
		}
		if req.Fingerprint != "" && req.Fingerprint != fp {
			return nil, fmt.Errorf("request fingerprint %s does not match the network/region/options sent (%s)", req.Fingerprint, fp)
		}
		q.fingerprint = fp
		// Remember the workload so follow-up requests may send just the
		// fingerprint.
		s.workloads.put(fp, &inferWorkload{net: net, region: region, compileOpts: q.compileOpts})
	case req.Fingerprint != "":
		wl, ok := s.workloads.get(req.Fingerprint)
		if !ok {
			return nil, fmt.Errorf("workload %s: %w (send the full network once to prime it)", req.Fingerprint, errUnknownFingerprint)
		}
		q.net, q.region, q.compileOpts = wl.net, wl.region, wl.compileOpts
		q.fingerprint = req.Fingerprint
	default:
		return nil, fmt.Errorf("request needs a network or a fingerprint")
	}
	if len(req.Inputs) == 0 {
		return nil, fmt.Errorf("request needs at least one input")
	}
	if len(req.Inputs) > maxInferBatch {
		return nil, fmt.Errorf("batch of %d inputs exceeds the %d cap", len(req.Inputs), maxInferBatch)
	}
	dim := q.net.InputDim()
	for i, x := range req.Inputs {
		if len(x) != dim {
			return nil, fmt.Errorf("input %d has dimension %d, network input %d", i, len(x), dim)
		}
	}
	if req.Monitor != nil && req.MonitorFingerprint != "" {
		return nil, fmt.Errorf("send a monitor spec or a monitor_fingerprint, not both")
	}
	if req.Monitor != nil {
		m := req.Monitor
		if len(m.Data) == 0 {
			return nil, fmt.Errorf("monitor needs a build dataset")
		}
		if len(m.Data) > maxMonitorData {
			return nil, fmt.Errorf("monitor dataset of %d rows exceeds the %d cap", len(m.Data), maxMonitorData)
		}
		q.monitorOpts = vnn.MonitorOptions{Gamma: m.Gamma, Layers: m.Layers}
		// Network-dependent monitor validation (dims, gamma, layers) is
		// one copy of the rules: the MonitorAudit analysis owns it.
		audit := vnn.MonitorAudit{Data: m.Data, Gamma: m.Gamma, Layers: m.Layers}
		if err := audit.Validate(q.net); err != nil {
			return nil, err
		}
		q.monitorFP = vnn.MonitorWorkloadFingerprint(q.fingerprint, m.Data, q.monitorOpts)
	}
	q.monitorContentFP = req.MonitorFingerprint
	return q, nil
}

// inferShard is one per-core serving lane: exclusively owned scratch for
// the batched kernels plus its own throughput counters. Shards are
// leased through a token channel, so at most len(shards) chunks run at
// once and a shard's scratch never sees two goroutines.
type inferShard struct {
	// idx is the lane number: the shard's fixed position in the set,
	// used as the histogram shard and the `lane` label/attr in traces
	// and the Prometheus rendering.
	idx int
	// fwd serves unmonitored batches; GrowScratch reuses it across
	// networks of any size.
	fwd *vnn.ForwardScratch
	// bsc serves monitored batches; it is bound to the monitor instance
	// mon and remade only when the shard switches monitors, so a
	// steady-state single-model server performs zero scratch allocations
	// per request.
	mon *vnn.Monitor
	bsc *vnn.MonitorBatchScratch

	batches atomic.Int64
	inputs  atomic.Int64
}

// inferShards is the fixed shard set plus the lease tokens.
type inferShards struct {
	shards []*inferShard
	tokens chan *inferShard
}

func newInferShards(n int) *inferShards {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	p := &inferShards{shards: make([]*inferShard, n), tokens: make(chan *inferShard, n)}
	for i := range p.shards {
		sh := &inferShard{idx: i}
		p.shards[i] = sh
		p.tokens <- sh
	}
	return p
}

// runInfer evaluates the batch, sharding it across the serving lanes.
// Outputs (and verdicts, when mon is non-nil) land in the caller's
// slices; the split cannot change bits — every cell is produced in the
// kernels' fixed accumulation order whichever shard computes it. Returns
// ctx.Err() if the batch was interrupted.
func (s *Server) runInfer(ctx context.Context, sp *obs.Span, net *vnn.Network, mon *vnn.Monitor, inputs, outputs [][]float64, verdicts []vnn.MonitorVerdict) error {
	batch := len(inputs)
	chunks := (batch + minShardChunk - 1) / minShardChunk
	if chunks > len(s.shards.shards) {
		chunks = len(s.shards.shards)
	}
	if chunks < 1 {
		chunks = 1
	}
	size := (batch + chunks - 1) / chunks
	var interrupted atomic.Bool
	run := func(lo, hi int) {
		sh := <-s.shards.tokens
		defer func() { s.shards.tokens <- sh }()
		if mon != nil {
			if sh.mon != mon {
				// Identity, not fingerprint: content-identical monitors can
				// be distinct instances, and a BatchScratch is only valid
				// for the instance that created it.
				sh.mon, sh.bsc = mon, mon.NewBatchScratch()
			}
		} else {
			sh.fwd = net.GrowScratch(sh.fwd)
		}
		sh.batches.Add(1)
		chunkStart := time.Now()
		for i := lo; i < hi; i += inferCancelStride {
			if ctx.Err() != nil {
				interrupted.Store(true)
				return
			}
			j := min(i+inferCancelStride, hi)
			if mon != nil {
				mon.CheckBatchInto(outputs[i:j], sh.bsc, inputs[i:j], verdicts[i:j])
			} else {
				net.ForwardBatchInto(outputs[i:j], sh.fwd, inputs[i:j])
			}
			sh.inputs.Add(int64(j - i))
		}
		// One histogram add and (when traced) one span per chunk — the
		// per-input loop above stays observation-free.
		d := time.Since(chunkStart)
		s.obs.chunkTime.ObserveShard(sh.idx, int64(d))
		cs := sp.ChildTimed("chunk", d)
		cs.SetAttr("lane", sh.idx)
		cs.SetAttr("inputs", hi-lo)
	}
	if chunks == 1 {
		run(0, batch)
	} else {
		var wg sync.WaitGroup
		for c := 0; c < chunks; c++ {
			lo := c * size
			hi := min(lo+size, batch)
			if lo >= hi {
				break
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				run(lo, hi)
			}()
		}
		wg.Wait()
	}
	if interrupted.Load() {
		return ctx.Err()
	}
	return nil
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req InferRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	modelName := req.Model
	if qp := r.URL.Query().Get("model"); qp != "" {
		if modelName != "" && modelName != qp {
			writeError(w, http.StatusBadRequest, "model differs between query parameter and body")
			return
		}
		modelName = qp
	}
	var q *preparedInfer
	var sv *vnnregistry.Resolved
	var err error
	if modelName != "" {
		q, sv, err = s.prepareModelInfer(&req, modelName)
		if err != nil {
			status := http.StatusBadRequest
			if errors.Is(err, vnnregistry.ErrNotReady) || errors.Is(err, vnnregistry.ErrUnknownModel) || errors.Is(err, vnnregistry.ErrNoServing) {
				status = registryStatus(err)
			}
			writeError(w, status, err.Error())
			return
		}
	} else if q, err = s.prepareInfer(&req); err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, errUnknownFingerprint) {
			status = http.StatusNotFound
		}
		writeError(w, status, err.Error())
		return
	}

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), timeout)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel) // drain interrupts the batch
	defer stop()

	start := time.Now()
	tr := s.startTrace(r, "/v1/infer", "")
	tn := s.tenantFor(r)
	root := tr.Root()
	root.SetAttr("fingerprint", q.fingerprint)
	root.SetAttr("batch", len(req.Inputs))
	defer tr.Finish()
	defer observeSince(s.obs.inferLatency, start)

	resp := &InferResponse{Fingerprint: q.fingerprint}

	var mon *vnn.Monitor
	switch {
	case req.Monitor != nil:
		// The monitor's static cross-check needs the compiled bounds: the
		// compile routes through the same fingerprint-keyed singleflight
		// cache as /v1/verify, under the server's lifetime context (shared
		// work only drain may interrupt). The built monitor is then cached
		// under its own workload fingerprint and indexed by its content
		// hash for by-fingerprint reuse.
		cacheSpan := root.Child("cache")
		cn, hit, err := s.cache.GetOrCompile(ctx, q.fingerprint, func() (*vnn.CompiledNetwork, error) {
			return s.compileTraced(cacheSpan, q.net, q.region, q.compileOpts)
		})
		cacheSpan.SetAttr("hit", hit)
		cacheSpan.End()
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		resp.CacheHit = hit
		monSpan := root.Child("monitor")
		buildStart := time.Now()
		mon, hit, err = s.monitors.getOrBuild(ctx, q.monitorFP, func() (*vnn.Monitor, error) {
			return vnn.BuildMonitor(cn, req.Monitor.Data, q.monitorOpts)
		})
		if !hit {
			// Only actual builds feed the histogram; hits are cache waits.
			observeSince(s.obs.monitorBuild, buildStart)
		}
		monSpan.SetAttr("hit", hit)
		monSpan.End()
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		resp.MonitorCacheHit = hit
	case q.monitorContentFP != "":
		var ok bool
		mon, ok = s.monitors.lookupContent(q.monitorContentFP)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("monitor %s: %s (send the full monitor spec once to rebuild it)", q.monitorContentFP, errUnknownFingerprint))
			return
		}
		// A monitor describes one certified artifact; refuse to run it
		// against a different workload.
		if mon.NetworkFingerprint() != q.fingerprint {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("monitor %s belongs to workload %s, not %s", q.monitorContentFP, mon.NetworkFingerprint(), q.fingerprint))
			return
		}
		resp.MonitorCacheHit = true
	}
	if sv != nil {
		// Registry-served: the resolved version's artifacts are warm by
		// construction (compiled at gate time or recovery), so routed
		// requests never compile on the hot path.
		mon = sv.Monitor
		resp.CacheHit = true
		resp.Model = sv.Version.Model()
		resp.ModelVersion = sv.Version.Seq()
		resp.Route = sv.Route
		root.SetAttr("model", resp.Model)
		root.SetAttr("model_version", resp.ModelVersion)
		root.SetAttr("route", sv.Route)
	}
	if mon != nil {
		resp.MonitorFingerprint = mon.Fingerprint()
		resp.MonitorPatterns = mon.PatternCount()
		resp.MonitorRejected = mon.Stats().Rejected
	}

	net := q.net
	outputs := make([][]float64, len(req.Inputs))
	outDim := net.OutputDim()
	flat := make([]float64, len(req.Inputs)*outDim) // one backing array, one alloc
	for i := range outputs {
		outputs[i], flat = flat[:outDim:outDim], flat[outDim:]
	}
	var verdicts []vnn.MonitorVerdict
	if mon != nil {
		verdicts = make([]vnn.MonitorVerdict, len(req.Inputs))
	}

	runSpan := root.Child("run")
	err = s.runInfer(ctx, runSpan, net, mon, req.Inputs, outputs, verdicts)
	runSpan.End()
	if err != nil {
		// Unlike verification there is no anytime value in half a batch:
		// predictions are cheap to re-request, so an interrupted batch is
		// an error (503 on drain/disconnect, 504 on budget).
		writeError(w, statusFor(err), err.Error())
		return
	}
	if mon != nil {
		resp.Verdicts = make([]VerdictJSON, len(verdicts))
		for i, v := range verdicts {
			resp.Verdicts[i] = VerdictJSON{OK: v.OK, Layer: v.Layer, Distance: v.Distance}
			if !v.OK {
				resp.Flagged++
			}
		}
	}

	if sv != nil {
		sv.Version.CountServeTenant(tn.Label(), len(req.Inputs), resp.Flagged)
	}
	// Effort counters before the request counter — the write half of the
	// Metrics snapshot ordering guarantee (see metrics.go). The tenant's
	// input/flagged counters obey the same order relative to its
	// per-route request counter (latency lands inside Count).
	s.inferInputs.Add(int64(len(req.Inputs)))
	s.inferFlagged.Add(int64(resp.Flagged))
	s.inferRequests.Add(1)
	xInferInputs.Add(int64(len(req.Inputs)))
	xInferFlagged.Add(int64(resp.Flagged))
	xInferRequests.Add(1)
	s.obs.inferBatch.Observe(int64(len(req.Inputs)))
	tn.CountInputs(len(req.Inputs), resp.Flagged)
	tn.Route("/v1/infer").Count(time.Since(start))

	resp.Outputs = outputs
	writeJSON(w, http.StatusOK, resp)
}

// inferWorkload is a remembered (network, region, compile options)
// triple, keyed by its fingerprint so by-fingerprint requests skip the
// network upload and parse.
type inferWorkload struct {
	net         *vnn.Network
	region      *vnn.Region
	compileOpts vnn.Options
}

// workloadCache is a small LRU of served infer workloads. Unlike the
// compile cache there is no singleflight: entries are cheap (a parsed
// network) and only ever stored after a full-network request succeeded.
type workloadCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*inferWorkload
	order    []string // LRU order, most recent last
}

func newWorkloadCache(capacity int) *workloadCache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &workloadCache{capacity: capacity, entries: make(map[string]*inferWorkload)}
}

func (c *workloadCache) get(key string) (*inferWorkload, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wl, ok := c.entries[key]
	if ok {
		c.touchLocked(key)
	}
	return wl, ok
}

func (c *workloadCache) put(key string, wl *inferWorkload) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.entries[key]; ok {
		c.touchLocked(key)
		return // fingerprints are content hashes: same key, same workload
	}
	c.entries[key] = wl
	c.order = append(c.order, key)
	for len(c.entries) > c.capacity {
		old := c.order[0]
		c.order = c.order[1:]
		delete(c.entries, old)
	}
}

func (c *workloadCache) touchLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			break
		}
	}
	c.order = append(c.order, key)
}

// Len returns the number of remembered workloads.
func (c *workloadCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// monitorCache is the fingerprint-keyed LRU of built monitors with the
// same singleflight semantics as the compile Cache: N concurrent
// identical monitored-infer requests build exactly one monitor; failures
// are not cached. Monitors are immutable and safe to share. Completed
// entries are additionally indexed by the monitor's content hash, so
// by-fingerprint requests (InferRequest.MonitorFingerprint) resolve
// without re-sending the build dataset.
type monitorCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*monitorEntry
	order    []string // LRU order, most recent last
	// byContent maps a built monitor's content fingerprint to its entry.
	// Content-identical monitors from distinct workloads share a hash;
	// the index keeps the most recently built one, and dropping an entry
	// only clears the index if it still points at that entry.
	byContent map[string]*monitorEntry
}

type monitorEntry struct {
	key       string
	ready     chan struct{} // closed once mon/err are set
	mon       *vnn.Monitor
	err       error
	contentFP string // set with mon, under c.mu
	// bytes (marshaled monitor size) and added feed the GET /v1/workloads
	// index; bytes is written before ready closes, like cacheEntry.bytes.
	bytes int64
	added time.Time
}

func newMonitorCache(capacity int) *monitorCache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &monitorCache{
		capacity:  capacity,
		entries:   make(map[string]*monitorEntry),
		byContent: make(map[string]*monitorEntry),
	}
}

// getOrBuild returns the monitor cached under key, building it on a miss.
// The bool reports a cache hit (true for waiters that joined an in-flight
// build). ctx bounds only this caller's wait, exactly like the compile
// cache.
func (c *monitorCache) getOrBuild(ctx context.Context, key string, build func() (*vnn.Monitor, error)) (*vnn.Monitor, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		xInferMonitorHits.Add(1)
		select {
		case <-e.ready:
			return e.mon, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &monitorEntry{key: key, ready: make(chan struct{}), added: time.Now()}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.evictLocked()
	c.mu.Unlock()
	xInferMonitorMisses.Add(1)

	e.mon, e.err = build()
	if e.err == nil {
		if doc, err := vnn.MarshalMonitor(e.mon); err == nil {
			e.bytes = int64(len(doc))
		}
	}
	close(e.ready)
	c.mu.Lock()
	if e.err != nil {
		if cur, ok := c.entries[key]; ok && cur == e {
			c.dropLocked(key, e)
		}
	} else if _, ok := c.entries[key]; ok {
		e.contentFP = e.mon.Fingerprint()
		c.byContent[e.contentFP] = e
	}
	c.mu.Unlock()
	return e.mon, false, e.err
}

// entriesInfo snapshots every completed, successful monitor entry for the
// GET /v1/workloads index (workload key, not content hash — the index
// lists build workloads; content hashes travel in infer responses).
func (c *monitorCache) entriesInfo() []cachedArtifact {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]cachedArtifact, 0, len(c.order))
	for _, key := range c.order {
		e := c.entries[key]
		select {
		case <-e.ready:
			if e.err == nil {
				out = append(out, cachedArtifact{key: e.key, bytes: e.bytes, added: e.added})
			}
		default:
		}
	}
	return out
}

// contentKeys snapshots the content fingerprints of every completed
// monitor — the monitor half of the fleet plane's set enumeration.
func (c *monitorCache) contentKeys() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.byContent))
	for fp := range c.byContent {
		out = append(out, fp)
	}
	return out
}

// importContent inserts an externally obtained (already verified)
// monitor, keyed by its content fingerprint — a pulled monitor has no
// local build-workload key, and the vnnm1-/vnnmw1- namespaces are
// disjoint so content keys never collide with build keys. Reports
// false when the content is already cached (local build raced the
// pull and won; the entries are content-identical either way).
func (c *monitorCache) importContent(mon *vnn.Monitor) bool {
	fp := mon.Fingerprint()
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.byContent[fp]; ok {
		return false
	}
	if _, ok := c.entries[fp]; ok {
		return false
	}
	e := &monitorEntry{key: fp, ready: make(chan struct{}), mon: mon, contentFP: fp, added: time.Now()}
	if doc, err := vnn.MarshalMonitor(mon); err == nil {
		e.bytes = int64(len(doc))
	}
	close(e.ready)
	c.entries[fp] = e
	c.order = append(c.order, fp)
	c.byContent[fp] = e
	c.evictLocked()
	return true
}

// lookupContent resolves a built monitor by its content fingerprint
// (Monitor.Fingerprint), touching its workload entry's LRU position.
func (c *monitorCache) lookupContent(contentFP string) (*vnn.Monitor, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	e, ok := c.byContent[contentFP]
	if !ok {
		return nil, false
	}
	c.touchLocked(e.key)
	return e.mon, true
}

// touchLocked moves key to the most-recently-used position.
func (c *monitorCache) touchLocked(key string) {
	c.removeOrderLocked(key)
	c.order = append(c.order, key)
}

func (c *monitorCache) removeOrderLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// dropLocked removes entry e stored under key, including its content
// index (unless a newer entry took the content slot).
func (c *monitorCache) dropLocked(key string, e *monitorEntry) {
	delete(c.entries, key)
	c.removeOrderLocked(key)
	if e.contentFP != "" && c.byContent[e.contentFP] == e {
		delete(c.byContent, e.contentFP)
	}
}

// evictLocked drops least-recently-used completed entries over capacity.
func (c *monitorCache) evictLocked() {
	for i := 0; len(c.entries) > c.capacity && i < len(c.order); {
		key := c.order[i]
		e := c.entries[key]
		select {
		case <-e.ready:
			c.dropLocked(key, e)
		default:
			i++ // still building: never evicted (it is brand new anyway)
		}
	}
}

// Len returns the number of cached (including in-flight) monitors.
func (c *monitorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
