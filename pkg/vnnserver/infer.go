// POST /v1/infer: the online inference plane. Where /v1/verify asks
// questions about a network, /v1/infer *runs* it under supervision: a
// batch of inputs comes back as predictions plus, when requested, a
// per-input runtime-monitor verdict flagging out-of-pattern inputs before
// their predictions are trusted (the paper's operation-time pillar).
//
// The endpoint is built for latency, not search:
//
//   - No scheduler queue and no SSE jobs — a forward pass is microseconds,
//     so requests run inline on their handler goroutine; only Drain and
//     the request context interrupt them.
//   - The hot path is allocation-free: forwards run through
//     nn.ForwardInto-style scratch owned by a sync.Pool, and monitored
//     forwards fuse prediction and pattern check into one pass
//     (vnn.Monitor.CheckInto). Predictions are bit-identical to
//     nn.Forward.
//   - Artifacts are cached and deduplicated exactly like compiles: the
//     monitor's bounds cross-check needs the compiled network, which
//     routes through the fingerprint-keyed compile cache (singleflight),
//     and built monitors live in their own fingerprint-keyed LRU, so N
//     concurrent identical monitored-infer requests build one monitor
//     over one compile.

package vnnserver

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/pkg/vnn"
)

const (
	// maxInferBatch bounds the inputs one request may carry.
	maxInferBatch = 4096
	// maxMonitorData bounds the monitor-build dataset one request may
	// carry (builds are cached, so this is paid once per distinct
	// monitor workload).
	maxMonitorData = 1 << 16
	// inferCancelStride is how many inputs are evaluated between
	// context checks (one ForwardBatchInto chunk on the unmonitored
	// path): batches notice drain promptly without paying a per-input
	// atomic load.
	inferCancelStride = 256
)

// InferMonitorSpec asks for runtime monitoring of an infer batch: a
// monitor is built (or fetched from the monitor cache) from Data over the
// request's compiled network and checks every input.
type InferMonitorSpec struct {
	// Data is the build dataset (e.g. the training set).
	Data [][]float64 `json:"data"`
	// Gamma is the Hamming relaxation; 0 means exact-match monitoring.
	Gamma int `json:"gamma,omitempty"`
	// Layers selects monitored hidden ReLU layers; nil means all.
	Layers []int `json:"layers,omitempty"`
}

// InferRequest is the POST /v1/infer body.
type InferRequest struct {
	// Network is the canonical network JSON (see vnn.MarshalNetwork).
	Network json.RawMessage `json:"network"`
	// Region is the operational design domain the network was certified
	// over; the monitor's static cross-check runs against its compiled
	// bounds.
	Region vnn.RegionSpec `json:"region"`
	// Inputs is the batch to evaluate.
	Inputs [][]float64 `json:"inputs"`
	// Monitor, when present, requests per-input runtime verdicts.
	Monitor *InferMonitorSpec `json:"monitor,omitempty"`
	// Options affect only the compile the monitor cross-checks against
	// (Tighten tightens the bounds patterns are validated by); they are
	// part of the fingerprint exactly as for /v1/verify.
	Options QueryOptions `json:"options"`
	// TimeoutMS bounds the whole request including any compile or
	// monitor build it triggers; 0 falls back to the server's default.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// VerdictJSON is the wire form of one monitor verdict.
type VerdictJSON struct {
	OK bool `json:"ok"`
	// Layer and Distance locate the verdict: on rejection, the first
	// monitored layer whose Hamming distance exceeded gamma; on
	// acceptance, the layer with the largest admissible distance.
	Layer    int `json:"layer"`
	Distance int `json:"distance"`
}

// InferResponse is the infer answer: predictions in input order, plus
// monitor verdicts when monitoring was requested.
type InferResponse struct {
	// Fingerprint identifies the (network, region, options) workload;
	// CacheHit reports whether the monitored path reused a cached compile.
	Fingerprint string `json:"fingerprint"`
	CacheHit    bool   `json:"cache_hit"`
	// MonitorFingerprint is the content hash of the monitor that checked
	// this batch; MonitorCacheHit reports whether it was reused.
	MonitorFingerprint string `json:"monitor_fingerprint,omitempty"`
	MonitorCacheHit    bool   `json:"monitor_cache_hit,omitempty"`
	// MonitorPatterns and MonitorRejected echo the monitor build: stored
	// patterns, and dataset patterns rejected as statically unreachable.
	MonitorPatterns int `json:"monitor_patterns,omitempty"`
	MonitorRejected int `json:"monitor_rejected,omitempty"`
	// Outputs[i] is the raw network output for Inputs[i], bit-identical
	// to nn.Forward.
	Outputs [][]float64 `json:"outputs"`
	// Verdicts[i] classifies Inputs[i]; nil without a monitor.
	Verdicts []VerdictJSON `json:"verdicts,omitempty"`
	// Flagged counts out-of-pattern inputs in this batch.
	Flagged int `json:"flagged"`
}

// preparedInfer is a parsed, validated infer request.
type preparedInfer struct {
	net         *vnn.Network
	region      *vnn.Region
	fingerprint string
	compileOpts vnn.Options
	monitorFP   string
	monitorOpts vnn.MonitorOptions
}

// prepareInfer validates everything that can be the client's fault.
func (s *Server) prepareInfer(req *InferRequest) (*preparedInfer, error) {
	if len(req.Network) == 0 {
		return nil, fmt.Errorf("request needs a network")
	}
	net, err := vnn.UnmarshalNetwork(req.Network)
	if err != nil {
		return nil, err
	}
	region, err := req.Region.Region()
	if err != nil {
		return nil, err
	}
	if len(req.Inputs) == 0 {
		return nil, fmt.Errorf("request needs at least one input")
	}
	if len(req.Inputs) > maxInferBatch {
		return nil, fmt.Errorf("batch of %d inputs exceeds the %d cap", len(req.Inputs), maxInferBatch)
	}
	dim := net.InputDim()
	for i, x := range req.Inputs {
		if len(x) != dim {
			return nil, fmt.Errorf("input %d has dimension %d, network input %d", i, len(x), dim)
		}
	}
	compileOpts := vnn.Options{Tighten: req.Options.Tighten, Workers: req.Options.Workers}
	fp, err := vnn.Fingerprint(net, region, compileOpts)
	if err != nil {
		return nil, err
	}
	q := &preparedInfer{
		net:         net,
		region:      region,
		fingerprint: fp,
		compileOpts: compileOpts,
	}
	if req.Monitor != nil {
		m := req.Monitor
		if len(m.Data) == 0 {
			return nil, fmt.Errorf("monitor needs a build dataset")
		}
		if len(m.Data) > maxMonitorData {
			return nil, fmt.Errorf("monitor dataset of %d rows exceeds the %d cap", len(m.Data), maxMonitorData)
		}
		q.monitorOpts = vnn.MonitorOptions{Gamma: m.Gamma, Layers: m.Layers}
		// Network-dependent monitor validation (dims, gamma, layers) is
		// one copy of the rules: the MonitorAudit analysis owns it.
		audit := vnn.MonitorAudit{Data: m.Data, Gamma: m.Gamma, Layers: m.Layers}
		if err := audit.Validate(net); err != nil {
			return nil, err
		}
		q.monitorFP = vnn.MonitorWorkloadFingerprint(fp, m.Data, q.monitorOpts)
	}
	return q, nil
}

// inferScratch is the pooled per-request hot-path state: the forward
// scratch, and — when the previous user served the same monitor — that
// monitor's fused check scratch, so a steady-state single-model server
// performs zero scratch allocations per request.
type inferScratch struct {
	fwd []float64
	sc  *vnn.MonitorScratch
	// mon is the monitor instance sc belongs to. Identity, not
	// fingerprint: two cache entries can hold content-identical monitors
	// (equal fingerprints) that are still distinct instances, and a
	// MonitorScratch is only valid for the instance that created it.
	mon *vnn.Monitor
}

func (s *Server) getInferScratch(need int) *inferScratch {
	is, _ := s.inferPool.Get().(*inferScratch)
	if is == nil {
		is = &inferScratch{}
	}
	if cap(is.fwd) < need {
		is.fwd = make([]float64, need)
	}
	is.fwd = is.fwd[:need]
	return is
}

func (s *Server) handleInfer(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req InferRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.prepareInfer(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(r.Context(), timeout)
	} else {
		ctx, cancel = context.WithCancel(r.Context())
	}
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel) // drain interrupts the batch
	defer stop()

	resp := &InferResponse{Fingerprint: q.fingerprint}

	var mon *vnn.Monitor
	if req.Monitor != nil {
		// The monitor's static cross-check needs the compiled bounds: the
		// compile routes through the same fingerprint-keyed singleflight
		// cache as /v1/verify, under the server's lifetime context (shared
		// work only drain may interrupt). The built monitor is then cached
		// under its own workload fingerprint.
		cn, hit, err := s.cache.GetOrCompile(ctx, q.fingerprint, func() (*vnn.CompiledNetwork, error) {
			return vnn.Compile(s.queryCtx, q.net, q.region, q.compileOpts)
		})
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		resp.CacheHit = hit
		mon, hit, err = s.monitors.getOrBuild(ctx, q.monitorFP, func() (*vnn.Monitor, error) {
			return vnn.BuildMonitor(cn, req.Monitor.Data, q.monitorOpts)
		})
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		resp.MonitorCacheHit = hit
		resp.MonitorFingerprint = mon.Fingerprint()
		resp.MonitorPatterns = mon.PatternCount()
		resp.MonitorRejected = mon.Stats().Rejected
	}

	net := q.net
	outputs := make([][]float64, len(req.Inputs))
	outDim := net.OutputDim()
	flat := make([]float64, len(req.Inputs)*outDim) // one backing array, one alloc
	for i := range outputs {
		outputs[i], flat = flat[:outDim:outDim], flat[outDim:]
	}

	is := s.getInferScratch(net.ScratchLen())
	defer s.inferPool.Put(is)

	interrupted := false
	if mon != nil {
		if is.mon != mon {
			is.sc, is.mon = mon.NewScratch(), mon
		}
		resp.Verdicts = make([]VerdictJSON, len(req.Inputs))
		for i, x := range req.Inputs {
			if i%inferCancelStride == 0 && ctx.Err() != nil {
				interrupted = true
				break
			}
			v := mon.CheckInto(outputs[i], is.sc, x)
			resp.Verdicts[i] = VerdictJSON{OK: v.OK, Layer: v.Layer, Distance: v.Distance}
			if !v.OK {
				resp.Flagged++
			}
		}
	} else {
		for i := 0; i < len(req.Inputs); i += inferCancelStride {
			if ctx.Err() != nil {
				interrupted = true
				break
			}
			j := min(i+inferCancelStride, len(req.Inputs))
			net.ForwardBatchInto(outputs[i:j], is.fwd, req.Inputs[i:j])
		}
	}
	if interrupted {
		// Unlike verification there is no anytime value in half a batch:
		// predictions are cheap to re-request, so an interrupted batch is
		// an error (503 on drain/disconnect, 504 on budget).
		writeError(w, statusFor(ctx.Err()), ctx.Err().Error())
		return
	}

	s.inferRequests.Add(1)
	s.inferInputs.Add(int64(len(req.Inputs)))
	s.inferFlagged.Add(int64(resp.Flagged))
	xInferRequests.Add(1)
	xInferInputs.Add(int64(len(req.Inputs)))
	xInferFlagged.Add(int64(resp.Flagged))

	resp.Outputs = outputs
	writeJSON(w, http.StatusOK, resp)
}

// monitorCache is the fingerprint-keyed LRU of built monitors with the
// same singleflight semantics as the compile Cache: N concurrent
// identical monitored-infer requests build exactly one monitor; failures
// are not cached. Monitors are immutable and safe to share.
type monitorCache struct {
	mu       sync.Mutex
	capacity int
	entries  map[string]*monitorEntry
	order    []string // LRU order, most recent last
}

type monitorEntry struct {
	ready chan struct{} // closed once mon/err are set
	mon   *vnn.Monitor
	err   error
}

func newMonitorCache(capacity int) *monitorCache {
	if capacity <= 0 {
		capacity = defaultCacheEntries
	}
	return &monitorCache{capacity: capacity, entries: make(map[string]*monitorEntry)}
}

// getOrBuild returns the monitor cached under key, building it on a miss.
// The bool reports a cache hit (true for waiters that joined an in-flight
// build). ctx bounds only this caller's wait, exactly like the compile
// cache.
func (c *monitorCache) getOrBuild(ctx context.Context, key string, build func() (*vnn.Monitor, error)) (*vnn.Monitor, bool, error) {
	c.mu.Lock()
	if e, ok := c.entries[key]; ok {
		c.touchLocked(key)
		c.mu.Unlock()
		xInferMonitorHits.Add(1)
		select {
		case <-e.ready:
			return e.mon, true, e.err
		case <-ctx.Done():
			return nil, true, ctx.Err()
		}
	}
	e := &monitorEntry{ready: make(chan struct{})}
	c.entries[key] = e
	c.order = append(c.order, key)
	c.evictLocked()
	c.mu.Unlock()
	xInferMonitorMisses.Add(1)

	e.mon, e.err = build()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if cur, ok := c.entries[key]; ok && cur == e {
			delete(c.entries, key)
			c.removeOrderLocked(key)
		}
		c.mu.Unlock()
	}
	return e.mon, false, e.err
}

// touchLocked moves key to the most-recently-used position.
func (c *monitorCache) touchLocked(key string) {
	c.removeOrderLocked(key)
	c.order = append(c.order, key)
}

func (c *monitorCache) removeOrderLocked(key string) {
	for i, k := range c.order {
		if k == key {
			c.order = append(c.order[:i], c.order[i+1:]...)
			return
		}
	}
}

// evictLocked drops least-recently-used completed entries over capacity.
func (c *monitorCache) evictLocked() {
	for i := 0; len(c.entries) > c.capacity && i < len(c.order); {
		key := c.order[i]
		e := c.entries[key]
		select {
		case <-e.ready:
			delete(c.entries, key)
			c.order = append(c.order[:i], c.order[i+1:]...)
		default:
			i++ // still building: never evicted (it is brand new anyway)
		}
	}
}

// Len returns the number of cached (including in-flight) monitors.
func (c *monitorCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}
