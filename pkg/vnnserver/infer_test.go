package vnnserver_test

import (
	"bytes"
	"encoding/json"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// inferNet builds a small ReLU predictor with dims independent of the
// case study, so infer tests stay fast.
func inferNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "infer-test", InputDim: 6, Hidden: []int{12, 12}, OutputDim: 3,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

// inferBox is the [-1, 1] region the infer tests quantify over.
func inferBox(dim int) [][2]float64 {
	box := make([][2]float64, dim)
	for i := range box {
		box[i] = [2]float64{-1, 1}
	}
	return box
}

func randRows(rng *rand.Rand, n, dim, scale int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = (rng.Float64()*2 - 1) * float64(scale)
		}
		rows[i] = row
	}
	return rows
}

func inferBody(t *testing.T, net *nn.Network, inputs [][]float64, mon *vnnserver.InferMonitorSpec) []byte {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:  inputs,
		Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postInfer(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode
}

// servingForward runs the serving-kernel forward (nn.ForwardInto) — the
// numerics /v1/infer promises bit-identity with. nn.Forward keeps the
// legacy sequential order and may differ by kernel-order ULPs.
func servingForward(net *nn.Network, x []float64) []float64 {
	dst := make([]float64, net.OutputDim())
	net.ForwardInto(dst, net.NewScratch(), x)
	return dst
}

// inferTol is the documented serving-vs-reference tolerance for the tiny
// test networks (see DESIGN.md "Kernel layer").
const inferTol = 1e-10

// TestInfer64ConcurrentBitIdenticalAndDeterministic is the inference
// plane's acceptance contract: 64 concurrent monitored clients against
// one warm server receive predictions bit-identical to direct
// nn.ForwardInto (and within documented tolerance of nn.Forward),
// identical deterministic verdicts, and the monitor is built exactly once
// (singleflight over the monitor cache).
func TestInfer64ConcurrentBitIdenticalAndDeterministic(t *testing.T) {
	net := inferNet(1)
	rng := rand.New(rand.NewSource(2))
	dataset := randRows(rng, 64, net.InputDim(), 1)
	// Probe both in-distribution inputs and wild ones (scale 3 leaves the
	// region and the learned patterns).
	inputs := append(randRows(rng, 24, net.InputDim(), 1), randRows(rng, 8, net.InputDim(), 3)...)

	_, ts := newTestServer(t, vnnserver.Config{})
	body := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})

	const clients = 64
	responses := make([]*vnnserver.InferResponse, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var ir vnnserver.InferResponse
			if status := postInfer(t, ts.URL, body, &ir); status != http.StatusOK {
				t.Errorf("client %d: status %d", c, status)
				return
			}
			responses[c] = &ir
		}(c)
	}
	wg.Wait()

	// Reference: direct serving-kernel forward passes on the same
	// network, cross-checked against the legacy order within tolerance.
	want := make([][]float64, len(inputs))
	for i, x := range inputs {
		want[i] = servingForward(net, x)
		legacy := net.Forward(x)
		for j := range legacy {
			if d := want[i][j] - legacy[j]; d > inferTol || d < -inferTol {
				t.Fatalf("input %d: serving %v vs legacy %v exceeds tolerance", i, want[i][j], legacy[j])
			}
		}
	}
	first := responses[0]
	if first == nil {
		t.Fatal("no successful responses")
	}
	builds := 0
	for c, ir := range responses {
		if ir == nil {
			t.Fatalf("client %d got no response", c)
		}
		if len(ir.Outputs) != len(inputs) || len(ir.Verdicts) != len(inputs) {
			t.Fatalf("client %d: %d outputs, %d verdicts for %d inputs", c, len(ir.Outputs), len(ir.Verdicts), len(inputs))
		}
		for i := range inputs {
			for j := range want[i] {
				if ir.Outputs[i][j] != want[i][j] { // bit-identical, no tolerance
					t.Fatalf("client %d input %d: output %v, nn.ForwardInto %v", c, i, ir.Outputs[i], want[i])
				}
			}
			if ir.Verdicts[i] != first.Verdicts[i] {
				t.Fatalf("client %d input %d: verdict %+v differs from %+v", c, i, ir.Verdicts[i], first.Verdicts[i])
			}
		}
		if ir.MonitorFingerprint != first.MonitorFingerprint {
			t.Fatalf("client %d: monitor fingerprint drifted", c)
		}
		if !ir.MonitorCacheHit {
			builds++
		}
	}
	if builds != 1 {
		t.Fatalf("%d monitor builds for %d identical concurrent requests, want 1", builds, clients)
	}
	// Out-of-distribution probes must actually be flagged.
	if first.Flagged == 0 {
		t.Fatal("no input flagged although a third of the batch left the training distribution")
	}
	// In-distribution dataset rows must pass: they are remembered exactly.
	exact := inferBody(t, net, dataset[:8], &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, exact, &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ir.Flagged != 0 {
		t.Fatalf("%d dataset rows flagged by the monitor that learned them", ir.Flagged)
	}
	if !ir.MonitorCacheHit || !ir.CacheHit {
		t.Fatal("warm server re-built the monitor or recompiled")
	}
}

// TestInferDeterministicAcrossServers pins bit-determinism across
// processes: a fresh server given the same request returns byte-identical
// outputs, verdicts and monitor fingerprints.
func TestInferDeterministicAcrossServers(t *testing.T) {
	net := inferNet(3)
	rng := rand.New(rand.NewSource(4))
	dataset := randRows(rng, 40, net.InputDim(), 1)
	inputs := randRows(rng, 16, net.InputDim(), 2)
	body := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 2})

	var results [2]vnnserver.InferResponse
	for round := 0; round < 2; round++ {
		_, ts := newTestServer(t, vnnserver.Config{})
		if status := postInfer(t, ts.URL, body, &results[round]); status != http.StatusOK {
			t.Fatalf("round %d: status %d", round, status)
		}
	}
	if results[0].MonitorFingerprint != results[1].MonitorFingerprint {
		t.Fatal("monitor fingerprints differ across servers")
	}
	a, _ := json.Marshal(results[0].Verdicts)
	b, _ := json.Marshal(results[1].Verdicts)
	if !bytes.Equal(a, b) {
		t.Fatal("verdicts differ across servers")
	}
	oa, _ := json.Marshal(results[0].Outputs)
	ob, _ := json.Marshal(results[1].Outputs)
	if !bytes.Equal(oa, ob) {
		t.Fatal("outputs differ across servers")
	}
}

func TestInferWithoutMonitor(t *testing.T) {
	net := inferNet(5)
	rng := rand.New(rand.NewSource(6))
	inputs := randRows(rng, 10, net.InputDim(), 1)
	_, ts := newTestServer(t, vnnserver.Config{})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, inferBody(t, net, inputs, nil), &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(ir.Verdicts) != 0 || ir.Flagged != 0 || ir.MonitorFingerprint != "" {
		t.Fatalf("unmonitored response carries monitor fields: %+v", ir)
	}
	for i, x := range inputs {
		want := servingForward(net, x)
		for j := range want {
			if ir.Outputs[i][j] != want[j] { // bit-identical to the serving kernels
				t.Fatalf("input %d: %v, want %v", i, ir.Outputs[i], want)
			}
		}
	}
	// Plain inference must not touch the compile cache.
	m := serverMetrics(t, ts.URL)
	if m.Cache.Misses != 0 {
		t.Fatalf("unmonitored infer compiled: %+v", m.Cache)
	}
	if m.Infer.Requests != 1 || m.Infer.Inputs != int64(len(inputs)) {
		t.Fatalf("infer metrics %+v", m.Infer)
	}
}

func serverMetrics(t *testing.T, url string) vnnserver.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m vnnserver.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInferValidation(t *testing.T) {
	net := inferNet(7)
	_, ts := newTestServer(t, vnnserver.Config{})
	cases := []struct {
		name string
		body []byte
	}{
		{"no inputs", inferBody(t, net, nil, nil)},
		{"bad dim", inferBody(t, net, [][]float64{{1, 2}}, nil)},
		{"empty monitor data", inferBody(t, net, randRows(rand.New(rand.NewSource(1)), 2, net.InputDim(), 1),
			&vnnserver.InferMonitorSpec{})},
		{"bad monitor layer", inferBody(t, net, randRows(rand.New(rand.NewSource(1)), 2, net.InputDim(), 1),
			&vnnserver.InferMonitorSpec{Data: randRows(rand.New(rand.NewSource(2)), 2, net.InputDim(), 1), Layers: []int{2}})},
		{"garbage", []byte(`{"network": 12`)},
	}
	for _, c := range cases {
		var errResp struct {
			Error string `json:"error"`
		}
		if status := postInfer(t, ts.URL, c.body, &errResp); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", c.name, status, errResp.Error)
		}
	}
	// Batch cap.
	big := make([][]float64, 4097)
	for i := range big {
		big[i] = make([]float64, net.InputDim())
	}
	if status := postInfer(t, ts.URL, inferBody(t, net, big, nil), nil); status != http.StatusBadRequest {
		t.Fatalf("over-cap batch: status %d, want 400", status)
	}
}

// TestInferContentIdenticalMonitorsDistinctInstances pins the pooled
// scratch being keyed by monitor *instance*: "layers": null and an
// explicit all-layers list are distinct monitor-cache workloads that
// build content-identical monitors (equal fingerprints). A scratch
// pooled after serving the first must not be handed to the second —
// that used to panic ("Scratch from a different monitor").
func TestInferContentIdenticalMonitorsDistinctInstances(t *testing.T) {
	net := inferNet(13)
	rng := rand.New(rand.NewSource(14))
	dataset := randRows(rng, 16, net.InputDim(), 1)
	inputs := randRows(rng, 4, net.InputDim(), 1)
	_, ts := newTestServer(t, vnnserver.Config{})

	implicit := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset})
	explicit := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Layers: []int{0, 1}})

	var a, b vnnserver.InferResponse
	if status := postInfer(t, ts.URL, implicit, &a); status != http.StatusOK {
		t.Fatalf("implicit layers: status %d", status)
	}
	if status := postInfer(t, ts.URL, explicit, &b); status != http.StatusOK {
		t.Fatalf("explicit layers: status %d", status)
	}
	if a.MonitorFingerprint != b.MonitorFingerprint {
		t.Fatal("expected content-identical monitors (the scenario under test)")
	}
	if b.MonitorCacheHit {
		t.Fatal("expected distinct monitor-cache workloads (the scenario under test)")
	}
	for i := range a.Verdicts {
		if a.Verdicts[i] != b.Verdicts[i] {
			t.Fatalf("verdict %d differs between identical monitors", i)
		}
	}
}

func TestInferHonorsDrain(t *testing.T) {
	net := inferNet(9)
	srv, ts := newTestServer(t, vnnserver.Config{})
	inputs := randRows(rand.New(rand.NewSource(10)), 4, net.InputDim(), 1)
	body := inferBody(t, net, inputs, nil)
	if status := postInfer(t, ts.URL, body, nil); status != http.StatusOK {
		t.Fatalf("pre-drain status %d", status)
	}
	srv.Drain(0)
	var errResp struct {
		Error string `json:"error"`
	}
	if status := postInfer(t, ts.URL, body, &errResp); status != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered infer with %d (%s), want 503", status, errResp.Error)
	}
}

// TestInferMonitorRejectsUnreachablePatternOverWire exercises the static
// cross-check end to end: the dataset smuggles an out-of-region input
// whose pattern the compiled bounds prove unreachable, and the response
// reports the rejection.
func TestInferMonitorRejectsUnreachablePatternOverWire(t *testing.T) {
	// The sign net: hidden ReLU pair (x, −x), region x ∈ [1, 3].
	net := &nn.Network{Name: "sign", Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: [][2]float64{{1, 3}}},
		Inputs:  [][]float64{{2}, {-2}},
		Monitor: &vnnserver.InferMonitorSpec{Data: [][]float64{{2}, {-2}, {2.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, vnnserver.Config{})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, body, &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ir.MonitorRejected != 1 {
		t.Fatalf("monitor_rejected = %d, want 1 (the out-of-region pattern)", ir.MonitorRejected)
	}
	if !ir.Verdicts[0].OK {
		t.Fatalf("in-region input flagged: %+v", ir.Verdicts[0])
	}
	if ir.Verdicts[1].OK {
		t.Fatalf("out-of-region input accepted although its pattern was rejected at build: %+v", ir.Verdicts[1])
	}
	if ir.Flagged != 1 {
		t.Fatalf("flagged = %d, want 1", ir.Flagged)
	}
}

// TestInferShardedBatchDeterministicAcrossWorkerCounts pins the sharding
// contract: a large batch split across 1, 2 and 7 serving lanes returns
// byte-identical outputs and verdicts — the kernels' fixed accumulation
// order makes the split invisible — and the per-shard /metrics counters
// account for every input exactly once.
func TestInferShardedBatchDeterministicAcrossWorkerCounts(t *testing.T) {
	net := inferNet(21)
	rng := rand.New(rand.NewSource(22))
	dataset := randRows(rng, 48, net.InputDim(), 1)
	inputs := randRows(rng, 512, net.InputDim(), 2) // large enough to shard
	body := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})

	var responses []vnnserver.InferResponse
	for _, workers := range []int{1, 2, 7} {
		_, ts := newTestServer(t, vnnserver.Config{InferWorkers: workers})
		var ir vnnserver.InferResponse
		if status := postInfer(t, ts.URL, body, &ir); status != http.StatusOK {
			t.Fatalf("workers=%d: status %d", workers, status)
		}
		responses = append(responses, ir)

		m := serverMetrics(t, ts.URL)
		if len(m.Infer.Shards) != workers {
			t.Fatalf("workers=%d: %d shard rows in /metrics", workers, len(m.Infer.Shards))
		}
		var shardInputs int64
		for _, sh := range m.Infer.Shards {
			shardInputs += sh.Inputs
		}
		if shardInputs != int64(len(inputs)) {
			t.Fatalf("workers=%d: shards account for %d inputs, want %d", workers, shardInputs, len(inputs))
		}
	}
	first, _ := json.Marshal(responses[0].Outputs)
	firstV, _ := json.Marshal(responses[0].Verdicts)
	for i := 1; i < len(responses); i++ {
		o, _ := json.Marshal(responses[i].Outputs)
		v, _ := json.Marshal(responses[i].Verdicts)
		if !bytes.Equal(o, first) {
			t.Fatalf("outputs differ between worker counts (run %d)", i)
		}
		if !bytes.Equal(v, firstV) {
			t.Fatalf("verdicts differ between worker counts (run %d)", i)
		}
	}
}

// TestInferByFingerprint pins the warm-path protocol: after one full
// request, a client may send just the fingerprints, skipping the network
// upload and the monitor dataset, and receives byte-identical answers.
// Unknown fingerprints answer 404.
func TestInferByFingerprint(t *testing.T) {
	net := inferNet(23)
	rng := rand.New(rand.NewSource(24))
	dataset := randRows(rng, 32, net.InputDim(), 1)
	inputs := randRows(rng, 8, net.InputDim(), 2)
	_, ts := newTestServer(t, vnnserver.Config{})

	var full vnnserver.InferResponse
	if status := postInfer(t, ts.URL, inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1}), &full); status != http.StatusOK {
		t.Fatalf("full request: status %d", status)
	}
	if full.Fingerprint == "" || full.MonitorFingerprint == "" {
		t.Fatal("response did not echo the fingerprints")
	}

	slim, err := json.Marshal(vnnserver.InferRequest{
		Fingerprint:        full.Fingerprint,
		MonitorFingerprint: full.MonitorFingerprint,
		Inputs:             inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, slim, &ir); status != http.StatusOK {
		t.Fatalf("by-fingerprint request: status %d", status)
	}
	if !ir.MonitorCacheHit || ir.MonitorFingerprint != full.MonitorFingerprint {
		t.Fatalf("by-fingerprint request did not reuse the cached monitor: %+v", ir)
	}
	a, _ := json.Marshal(full.Outputs)
	b, _ := json.Marshal(ir.Outputs)
	if !bytes.Equal(a, b) {
		t.Fatal("by-fingerprint outputs differ from the full request")
	}
	av, _ := json.Marshal(full.Verdicts)
	bv, _ := json.Marshal(ir.Verdicts)
	if !bytes.Equal(av, bv) {
		t.Fatal("by-fingerprint verdicts differ from the full request")
	}

	// Unmonitored by-fingerprint inference works too.
	plain, _ := json.Marshal(vnnserver.InferRequest{Fingerprint: full.Fingerprint, Inputs: inputs})
	var pr vnnserver.InferResponse
	if status := postInfer(t, ts.URL, plain, &pr); status != http.StatusOK {
		t.Fatalf("plain by-fingerprint: status %d", status)
	}
	if len(pr.Verdicts) != 0 {
		t.Fatal("plain by-fingerprint request returned verdicts")
	}

	// Unknown fingerprints are 404, telling the client to re-send.
	unknown, _ := json.Marshal(vnnserver.InferRequest{Fingerprint: "vnn1-nope", Inputs: inputs})
	if status := postInfer(t, ts.URL, unknown, nil); status != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d, want 404", status)
	}
	badMon, _ := json.Marshal(vnnserver.InferRequest{
		Fingerprint:        full.Fingerprint,
		MonitorFingerprint: "vnnm1-nope",
		Inputs:             inputs,
	})
	if status := postInfer(t, ts.URL, badMon, nil); status != http.StatusNotFound {
		t.Fatalf("unknown monitor fingerprint: status %d, want 404", status)
	}
	// A fingerprint contradicting the network sent alongside is a 400.
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	contradiction, _ := json.Marshal(vnnserver.InferRequest{
		Network:     netJSON,
		Fingerprint: "vnn1-nope",
		Region:      vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:      inputs,
	})
	if status := postInfer(t, ts.URL, contradiction, nil); status != http.StatusBadRequest {
		t.Fatalf("contradictory fingerprint: status %d, want 400", status)
	}
}

// BenchmarkInferHTTP measures end-to-end monitored inference throughput
// through the full HTTP stack — the number the CI bench job records as
// BENCH_infer.json.
func BenchmarkInferHTTP(b *testing.B) {
	net := inferNet(11)
	rng := rand.New(rand.NewSource(12))
	dataset := randRows(rng, 64, net.InputDim(), 1)
	inputs := randRows(rng, 64, net.InputDim(), 1)
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:  inputs,
		Monitor: &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := vnnserver.New(vnnserver.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Warm the caches so the loop measures the steady state.
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		// Drain so the connection is reused — a steady-state client runs
		// over keep-alive, not a fresh handshake per batch.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
}

// BenchmarkInferHTTPByFingerprint measures the warm serving protocol: the
// network and monitor travel as fingerprints, so the request carries only
// the batch and the server runs straight into the sharded batched
// kernels. This is the steady-state number a deployed client sees.
func BenchmarkInferHTTPByFingerprint(b *testing.B) {
	net := inferNet(11)
	rng := rand.New(rand.NewSource(12))
	dataset := randRows(rng, 64, net.InputDim(), 1)
	inputs := randRows(rng, 64, net.InputDim(), 1)
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		b.Fatal(err)
	}
	full, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:  inputs,
		Monitor: &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := vnnserver.New(vnnserver.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(full))
	if err != nil {
		b.Fatal(err)
	}
	var warm vnnserver.InferResponse
	if err := json.NewDecoder(resp.Body).Decode(&warm); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Fingerprint:        warm.Fingerprint,
		MonitorFingerprint: warm.MonitorFingerprint,
		Inputs:             inputs,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		// Drain so the connection is reused — a steady-state client runs
		// over keep-alive, not a fresh handshake per batch.
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
}
