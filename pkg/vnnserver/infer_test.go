package vnnserver_test

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/nn"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// inferNet builds a small ReLU predictor with dims independent of the
// case study, so infer tests stay fast.
func inferNet(seed int64) *nn.Network {
	rng := rand.New(rand.NewSource(seed))
	return nn.New(nn.Config{
		Name: "infer-test", InputDim: 6, Hidden: []int{12, 12}, OutputDim: 3,
		HiddenAct: nn.ReLU, OutputAct: nn.Identity,
	}, rng)
}

// inferBox is the [-1, 1] region the infer tests quantify over.
func inferBox(dim int) [][2]float64 {
	box := make([][2]float64, dim)
	for i := range box {
		box[i] = [2]float64{-1, 1}
	}
	return box
}

func randRows(rng *rand.Rand, n, dim, scale int) [][]float64 {
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, dim)
		for j := range row {
			row[j] = (rng.Float64()*2 - 1) * float64(scale)
		}
		rows[i] = row
	}
	return rows
}

func inferBody(t *testing.T, net *nn.Network, inputs [][]float64, mon *vnnserver.InferMonitorSpec) []byte {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:  inputs,
		Monitor: mon,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

func postInfer(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode
}

// TestInfer64ConcurrentBitIdenticalAndDeterministic is the inference
// plane's acceptance contract: 64 concurrent monitored clients against
// one warm server receive predictions bit-identical to direct nn.Forward,
// identical deterministic verdicts, and the monitor is built exactly once
// (singleflight over the monitor cache).
func TestInfer64ConcurrentBitIdenticalAndDeterministic(t *testing.T) {
	net := inferNet(1)
	rng := rand.New(rand.NewSource(2))
	dataset := randRows(rng, 64, net.InputDim(), 1)
	// Probe both in-distribution inputs and wild ones (scale 3 leaves the
	// region and the learned patterns).
	inputs := append(randRows(rng, 24, net.InputDim(), 1), randRows(rng, 8, net.InputDim(), 3)...)

	_, ts := newTestServer(t, vnnserver.Config{})
	body := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})

	const clients = 64
	responses := make([]*vnnserver.InferResponse, clients)
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			var ir vnnserver.InferResponse
			if status := postInfer(t, ts.URL, body, &ir); status != http.StatusOK {
				t.Errorf("client %d: status %d", c, status)
				return
			}
			responses[c] = &ir
		}(c)
	}
	wg.Wait()

	// Reference: direct forward passes on the same network.
	want := make([][]float64, len(inputs))
	for i, x := range inputs {
		want[i] = net.Forward(x)
	}
	first := responses[0]
	if first == nil {
		t.Fatal("no successful responses")
	}
	builds := 0
	for c, ir := range responses {
		if ir == nil {
			t.Fatalf("client %d got no response", c)
		}
		if len(ir.Outputs) != len(inputs) || len(ir.Verdicts) != len(inputs) {
			t.Fatalf("client %d: %d outputs, %d verdicts for %d inputs", c, len(ir.Outputs), len(ir.Verdicts), len(inputs))
		}
		for i := range inputs {
			for j := range want[i] {
				if ir.Outputs[i][j] != want[i][j] { // bit-identical, no tolerance
					t.Fatalf("client %d input %d: output %v, nn.Forward %v", c, i, ir.Outputs[i], want[i])
				}
			}
			if ir.Verdicts[i] != first.Verdicts[i] {
				t.Fatalf("client %d input %d: verdict %+v differs from %+v", c, i, ir.Verdicts[i], first.Verdicts[i])
			}
		}
		if ir.MonitorFingerprint != first.MonitorFingerprint {
			t.Fatalf("client %d: monitor fingerprint drifted", c)
		}
		if !ir.MonitorCacheHit {
			builds++
		}
	}
	if builds != 1 {
		t.Fatalf("%d monitor builds for %d identical concurrent requests, want 1", builds, clients)
	}
	// Out-of-distribution probes must actually be flagged.
	if first.Flagged == 0 {
		t.Fatal("no input flagged although a third of the batch left the training distribution")
	}
	// In-distribution dataset rows must pass: they are remembered exactly.
	exact := inferBody(t, net, dataset[:8], &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, exact, &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ir.Flagged != 0 {
		t.Fatalf("%d dataset rows flagged by the monitor that learned them", ir.Flagged)
	}
	if !ir.MonitorCacheHit || !ir.CacheHit {
		t.Fatal("warm server re-built the monitor or recompiled")
	}
}

// TestInferDeterministicAcrossServers pins bit-determinism across
// processes: a fresh server given the same request returns byte-identical
// outputs, verdicts and monitor fingerprints.
func TestInferDeterministicAcrossServers(t *testing.T) {
	net := inferNet(3)
	rng := rand.New(rand.NewSource(4))
	dataset := randRows(rng, 40, net.InputDim(), 1)
	inputs := randRows(rng, 16, net.InputDim(), 2)
	body := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 2})

	var results [2]vnnserver.InferResponse
	for round := 0; round < 2; round++ {
		_, ts := newTestServer(t, vnnserver.Config{})
		if status := postInfer(t, ts.URL, body, &results[round]); status != http.StatusOK {
			t.Fatalf("round %d: status %d", round, status)
		}
	}
	if results[0].MonitorFingerprint != results[1].MonitorFingerprint {
		t.Fatal("monitor fingerprints differ across servers")
	}
	a, _ := json.Marshal(results[0].Verdicts)
	b, _ := json.Marshal(results[1].Verdicts)
	if !bytes.Equal(a, b) {
		t.Fatal("verdicts differ across servers")
	}
	oa, _ := json.Marshal(results[0].Outputs)
	ob, _ := json.Marshal(results[1].Outputs)
	if !bytes.Equal(oa, ob) {
		t.Fatal("outputs differ across servers")
	}
}

func TestInferWithoutMonitor(t *testing.T) {
	net := inferNet(5)
	rng := rand.New(rand.NewSource(6))
	inputs := randRows(rng, 10, net.InputDim(), 1)
	_, ts := newTestServer(t, vnnserver.Config{})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, inferBody(t, net, inputs, nil), &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(ir.Verdicts) != 0 || ir.Flagged != 0 || ir.MonitorFingerprint != "" {
		t.Fatalf("unmonitored response carries monitor fields: %+v", ir)
	}
	for i, x := range inputs {
		want := net.Forward(x)
		for j := range want {
			if ir.Outputs[i][j] != want[j] {
				t.Fatalf("input %d: %v, want %v", i, ir.Outputs[i], want)
			}
		}
	}
	// Plain inference must not touch the compile cache.
	m := serverMetrics(t, ts.URL)
	if m.Cache.Misses != 0 {
		t.Fatalf("unmonitored infer compiled: %+v", m.Cache)
	}
	if m.Infer.Requests != 1 || m.Infer.Inputs != int64(len(inputs)) {
		t.Fatalf("infer metrics %+v", m.Infer)
	}
}

func serverMetrics(t *testing.T, url string) vnnserver.Metrics {
	t.Helper()
	resp, err := http.Get(url + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m vnnserver.Metrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestInferValidation(t *testing.T) {
	net := inferNet(7)
	_, ts := newTestServer(t, vnnserver.Config{})
	cases := []struct {
		name string
		body []byte
	}{
		{"no inputs", inferBody(t, net, nil, nil)},
		{"bad dim", inferBody(t, net, [][]float64{{1, 2}}, nil)},
		{"empty monitor data", inferBody(t, net, randRows(rand.New(rand.NewSource(1)), 2, net.InputDim(), 1),
			&vnnserver.InferMonitorSpec{})},
		{"bad monitor layer", inferBody(t, net, randRows(rand.New(rand.NewSource(1)), 2, net.InputDim(), 1),
			&vnnserver.InferMonitorSpec{Data: randRows(rand.New(rand.NewSource(2)), 2, net.InputDim(), 1), Layers: []int{2}})},
		{"garbage", []byte(`{"network": 12`)},
	}
	for _, c := range cases {
		var errResp struct {
			Error string `json:"error"`
		}
		if status := postInfer(t, ts.URL, c.body, &errResp); status != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400 (%s)", c.name, status, errResp.Error)
		}
	}
	// Batch cap.
	big := make([][]float64, 4097)
	for i := range big {
		big[i] = make([]float64, net.InputDim())
	}
	if status := postInfer(t, ts.URL, inferBody(t, net, big, nil), nil); status != http.StatusBadRequest {
		t.Fatalf("over-cap batch: status %d, want 400", status)
	}
}

// TestInferContentIdenticalMonitorsDistinctInstances pins the pooled
// scratch being keyed by monitor *instance*: "layers": null and an
// explicit all-layers list are distinct monitor-cache workloads that
// build content-identical monitors (equal fingerprints). A scratch
// pooled after serving the first must not be handed to the second —
// that used to panic ("Scratch from a different monitor").
func TestInferContentIdenticalMonitorsDistinctInstances(t *testing.T) {
	net := inferNet(13)
	rng := rand.New(rand.NewSource(14))
	dataset := randRows(rng, 16, net.InputDim(), 1)
	inputs := randRows(rng, 4, net.InputDim(), 1)
	_, ts := newTestServer(t, vnnserver.Config{})

	implicit := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset})
	explicit := inferBody(t, net, inputs, &vnnserver.InferMonitorSpec{Data: dataset, Layers: []int{0, 1}})

	var a, b vnnserver.InferResponse
	if status := postInfer(t, ts.URL, implicit, &a); status != http.StatusOK {
		t.Fatalf("implicit layers: status %d", status)
	}
	if status := postInfer(t, ts.URL, explicit, &b); status != http.StatusOK {
		t.Fatalf("explicit layers: status %d", status)
	}
	if a.MonitorFingerprint != b.MonitorFingerprint {
		t.Fatal("expected content-identical monitors (the scenario under test)")
	}
	if b.MonitorCacheHit {
		t.Fatal("expected distinct monitor-cache workloads (the scenario under test)")
	}
	for i := range a.Verdicts {
		if a.Verdicts[i] != b.Verdicts[i] {
			t.Fatalf("verdict %d differs between identical monitors", i)
		}
	}
}

func TestInferHonorsDrain(t *testing.T) {
	net := inferNet(9)
	srv, ts := newTestServer(t, vnnserver.Config{})
	inputs := randRows(rand.New(rand.NewSource(10)), 4, net.InputDim(), 1)
	body := inferBody(t, net, inputs, nil)
	if status := postInfer(t, ts.URL, body, nil); status != http.StatusOK {
		t.Fatalf("pre-drain status %d", status)
	}
	srv.Drain(0)
	var errResp struct {
		Error string `json:"error"`
	}
	if status := postInfer(t, ts.URL, body, &errResp); status != http.StatusServiceUnavailable {
		t.Fatalf("draining server answered infer with %d (%s), want 503", status, errResp.Error)
	}
}

// TestInferMonitorRejectsUnreachablePatternOverWire exercises the static
// cross-check end to end: the dataset smuggles an out-of-region input
// whose pattern the compiled bounds prove unreachable, and the response
// reports the rejection.
func TestInferMonitorRejectsUnreachablePatternOverWire(t *testing.T) {
	// The sign net: hidden ReLU pair (x, −x), region x ∈ [1, 3].
	net := &nn.Network{Name: "sign", Layers: []*nn.Layer{
		{W: [][]float64{{1}, {-1}}, B: []float64{0, 0}, Act: nn.ReLU},
		{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
	}}
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: [][2]float64{{1, 3}}},
		Inputs:  [][]float64{{2}, {-2}},
		Monitor: &vnnserver.InferMonitorSpec{Data: [][]float64{{2}, {-2}, {2.5}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, vnnserver.Config{})
	var ir vnnserver.InferResponse
	if status := postInfer(t, ts.URL, body, &ir); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if ir.MonitorRejected != 1 {
		t.Fatalf("monitor_rejected = %d, want 1 (the out-of-region pattern)", ir.MonitorRejected)
	}
	if !ir.Verdicts[0].OK {
		t.Fatalf("in-region input flagged: %+v", ir.Verdicts[0])
	}
	if ir.Verdicts[1].OK {
		t.Fatalf("out-of-region input accepted although its pattern was rejected at build: %+v", ir.Verdicts[1])
	}
	if ir.Flagged != 1 {
		t.Fatalf("flagged = %d, want 1", ir.Flagged)
	}
}

// BenchmarkInferHTTP measures end-to-end monitored inference throughput
// through the full HTTP stack — the number the CI bench job records as
// BENCH_infer.json.
func BenchmarkInferHTTP(b *testing.B) {
	net := inferNet(11)
	rng := rand.New(rand.NewSource(12))
	dataset := randRows(rng, 64, net.InputDim(), 1)
	inputs := randRows(rng, 64, net.InputDim(), 1)
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.InferRequest{
		Network: netJSON,
		Region:  vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Inputs:  inputs,
		Monitor: &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	srv := vnnserver.New(vnnserver.Config{})
	ts := httptest.NewServer(srv)
	defer ts.Close()
	// Warm the caches so the loop measures the steady state.
	resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		b.Fatalf("warmup status %d", resp.StatusCode)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(ts.URL+"/v1/infer", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			b.Fatalf("status %d", resp.StatusCode)
		}
	}
	b.ReportMetric(float64(len(inputs))*float64(b.N)/b.Elapsed().Seconds(), "inputs/s")
}
