package vnnserver

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// ErrQueueFull is returned by Scheduler.Run when the bounded admission
// queue is full — the backpressure signal the HTTP layer maps to 429.
var ErrQueueFull = errors.New("vnnserver: admission queue full")

// defaultQueueDepth is the number of queries allowed to wait behind the
// running ones when the config leaves it zero.
const defaultQueueDepth = 256

// Scheduler admits queries under a global worker budget. At most
// maxConcurrent queries run at once; up to queueDepth more wait in FIFO
// order; anything beyond that is rejected immediately with ErrQueueFull
// so overload surfaces as fast backpressure instead of unbounded latency.
//
// Each admitted query receives a fair share of the core budget:
// GOMAXPROCS divided by the number of queries in flight at its admission
// (floored at 1). A lone query gets the whole machine — the same worker
// count the CLI would use — while a loaded server divides cores instead
// of oversubscribing them with maxConcurrent × GOMAXPROCS branch-and-
// bound workers. The share is advisory: requests pinning an explicit
// worker count bypass it (determinism across runs needs a fixed count;
// see DESIGN.md).
type Scheduler struct {
	queue chan struct{} // admission tokens: maxConcurrent + queueDepth
	slots chan struct{} // run tokens: maxConcurrent
	cores int

	active    atomic.Int64
	queued    atomic.Int64
	rejected  atomic.Int64
	completed atomic.Int64

	// queueWait/runTime decompose every admitted query's latency into
	// slot wait vs execution. Set once right after NewScheduler (the
	// server wires them before serving); nil histograms no-op.
	queueWait *obs.Histogram
	runTime   *obs.Histogram
}

// NewScheduler builds a scheduler running at most maxConcurrent queries
// (<= 0 means GOMAXPROCS) with queueDepth waiting slots (0 means
// defaultQueueDepth; negative means no queue).
func NewScheduler(maxConcurrent, queueDepth int) *Scheduler {
	if maxConcurrent <= 0 {
		maxConcurrent = runtime.GOMAXPROCS(0)
	}
	switch {
	case queueDepth == 0:
		queueDepth = defaultQueueDepth
	case queueDepth < 0:
		queueDepth = 0
	}
	return &Scheduler{
		queue: make(chan struct{}, maxConcurrent+queueDepth),
		slots: make(chan struct{}, maxConcurrent),
		cores: runtime.GOMAXPROCS(0),
	}
}

// Admit reserves an admission token without blocking, returning
// ErrQueueFull when the queue is saturated. Every successful Admit must
// be balanced by exactly one RunAdmitted call, which releases the token.
// Splitting admission from execution lets the HTTP layer reject an
// overloaded async submission with 429 up front instead of accepting a
// job doomed to bounce.
func (s *Scheduler) Admit() error {
	select {
	case s.queue <- struct{}{}:
		return nil
	default:
		s.rejected.Add(1)
		xRejected.Add(1)
		return ErrQueueFull
	}
}

// cancelAdmitted releases an admission token whose RunAdmitted will never
// run — submission failed between Admit and execution, so the balancing
// release must happen here instead.
func (s *Scheduler) cancelAdmitted() { <-s.queue }

// Run admits fn under the budget and executes it on the calling
// goroutine. It returns ErrQueueFull when the queue is saturated, the
// context error if ctx fires while waiting for a run slot, and otherwise
// whatever fn returns. fn receives the derived fair-share worker count.
// tn, when non-nil, receives the requesting tenant's queue-wait
// observation alongside the global histogram — the demand signal the
// per-tenant accounting plane exists for.
func (s *Scheduler) Run(ctx context.Context, tn *obs.TenantStats, fn func(ctx context.Context, workers int) error) error {
	if err := s.Admit(); err != nil {
		return err
	}
	return s.RunAdmitted(ctx, tn, fn)
}

// RunAdmitted executes fn for a query that already holds an admission
// token (see Admit), waiting for a run slot and releasing the token when
// done.
func (s *Scheduler) RunAdmitted(ctx context.Context, tn *obs.TenantStats, fn func(ctx context.Context, workers int) error) error {
	defer func() { <-s.queue }()

	enqueued := time.Now()
	s.queued.Add(1)
	select {
	case s.slots <- struct{}{}:
		s.queued.Add(-1)
	case <-ctx.Done():
		s.queued.Add(-1)
		wait := time.Since(enqueued)
		s.queueWait.Observe(int64(wait))
		tn.ObserveQueueWait(wait)
		return ctx.Err()
	}
	wait := time.Since(enqueued)
	s.queueWait.Observe(int64(wait))
	tn.ObserveQueueWait(wait)
	started := time.Now()
	inFlight := s.active.Add(1)
	defer func() {
		s.active.Add(-1)
		s.completed.Add(1)
		s.runTime.Observe(int64(time.Since(started)))
		<-s.slots
	}()

	workers := s.cores / int(inFlight)
	if workers < 1 {
		workers = 1
	}
	return fn(ctx, workers)
}

// SchedulerStats is a point-in-time snapshot of admission state.
type SchedulerStats struct {
	// Admitted counts outstanding admission tokens: queued plus running
	// plus queries between Admit and RunAdmitted. Zero means truly idle —
	// the signal Drain's grace loop waits on.
	Admitted      int64 `json:"admitted"`
	Active        int64 `json:"active"`
	Queued        int64 `json:"queued"`
	Rejected      int64 `json:"rejected"`
	Completed     int64 `json:"completed"`
	MaxConcurrent int   `json:"max_concurrent"`
	QueueDepth    int   `json:"queue_depth"`
	Cores         int   `json:"cores"`
}

// Stats snapshots the scheduler counters.
func (s *Scheduler) Stats() SchedulerStats {
	return SchedulerStats{
		Admitted:      int64(len(s.queue)),
		Active:        s.active.Load(),
		Queued:        s.queued.Load(),
		Rejected:      s.rejected.Load(),
		Completed:     s.completed.Load(),
		MaxConcurrent: cap(s.slots),
		QueueDepth:    cap(s.queue) - cap(s.slots),
		Cores:         s.cores,
	}
}
