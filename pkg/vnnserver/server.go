// Package vnnserver is the verification service layer above pkg/vnn: a
// long-running HTTP server (see cmd/vnnd) through which a fleet of
// clients shares one warm verification engine.
//
// Three pieces turn the library API into a service:
//
//   - A fingerprint-keyed LRU compile cache with singleflight (Cache):
//     vnn.Compile — the expensive, reusable part of every query — runs at
//     most once per distinct (network, region, compile options) workload,
//     no matter how many clients ask concurrently.
//
//   - An admission scheduler (Scheduler): a bounded FIFO queue with
//     immediate backpressure when full, a cap on concurrently running
//     queries, and fair-share division of GOMAXPROCS across whatever is
//     in flight.
//
//   - A job registry streaming vnn.Event progress over SSE while a query
//     runs, and retaining finished results for later retrieval.
//
// Every budget is a context: per-request deadlines, client disconnects
// and server drain all reach the simplex pivot loops the same way, and an
// interrupted query answers with its anytime Result (best witness plus
// tightest proven bound at interruption) instead of an error.
//
// Endpoints:
//
//	POST /v1/verify              batch of properties over one network+region
//	GET  /v1/verify/{id}         result of a (possibly async) query
//	GET  /v1/verify/{id}/events  SSE progress stream, terminated by the result
//	POST /v1/analyze             dependability portfolio batch (coverage,
//	                             traceability, quant sweeps, data validation,
//	                             verification, falsification) over one
//	                             compiled network — see AnalyzeRequest
//	GET  /v1/analyze/{id}        result of a (possibly async) analyze batch
//	GET  /v1/analyze/{id}/events SSE per-analysis progress stream
//	POST /v1/infer               online inference plane: batch of inputs →
//	                             predictions (bit-identical to nn.Forward)
//	                             + per-input runtime-monitor verdicts,
//	                             low-latency (no queue, no SSE) — see
//	                             InferRequest
//	POST /v1/falsify             PGD falsification pre-pass
//	POST /v1/models              submit a named model version for the
//	                             certification-gated rollout plane
//	                             (pkg/vnnregistry); the gate runs async
//	                             through the scheduler/job registry
//	GET  /v1/models              every model's rollout document
//	GET  /v1/models/{name}       one model's rollout document
//	GET  /v1/models/{name}/events  SSE gate progress for a version
//	POST /v1/models/{name}/promote rollout control: canary share or cutover
//	POST /v1/models/{name}/rollback one-RTT swap back to the previous live
//	GET  /v1/workloads           index of cached serving workloads
//	GET  /healthz                liveness (always 200 while the process
//	                             can answer; reports drain state)
//	GET  /readyz                 readiness: 503 while draining or before
//	                             registry recovery completes
//	GET  /metrics                JSON metrics snapshot (see Metrics),
//	                             including per-kind analysis counters
//	GET  /debug/vars             standard expvar dump (vnnd.* counters)
package vnnserver

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"net/http/pprof"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/verify"
	"repro/pkg/vnn"
	"repro/pkg/vnnfleet"
	"repro/pkg/vnnregistry"
)

// Config tunes a Server. The zero value serves with sane defaults.
type Config struct {
	// CacheEntries caps the compile cache (<= 0 means 64).
	CacheEntries int
	// MaxConcurrent caps queries running at once (<= 0 means GOMAXPROCS).
	MaxConcurrent int
	// QueueDepth caps queries waiting for a run slot (0 means 256,
	// negative means reject as soon as every run slot is busy).
	QueueDepth int
	// DefaultTimeout applies to requests that set no timeout_ms of their
	// own; 0 means no deadline.
	DefaultTimeout time.Duration
	// MaxBodyBytes caps request bodies (<= 0 means 32 MiB).
	MaxBodyBytes int64
	// InferWorkers is the number of per-core serving lanes /v1/infer
	// shards batches across (<= 0 means GOMAXPROCS). Each lane owns its
	// kernel scratch; the count never affects output bits.
	InferWorkers int
	// Peers is the static fleet membership: base URLs of sibling vnnd
	// nodes (e.g. "http://10.0.0.2:8419") whose compile and monitor
	// caches this server replicates via rateless set reconciliation
	// (pkg/vnnfleet). Empty means no reconcile loop; the fleet
	// endpoints are mounted regardless, so other nodes may still pull
	// from this one.
	Peers []string
	// FleetInterval is the reconcile loop period (<= 0 means 30s).
	FleetInterval time.Duration
	// TraceRing caps the flight recorder's recent-trace ring (<= 0
	// means 256; rounded up to a power of two).
	TraceRing int
	// SlowRequest, when positive, logs every request at least this slow
	// through SlowLog (cmd/vnnd's -slow-log flag).
	SlowRequest time.Duration
	// SlowLog receives the structured slow-request lines; nil disables
	// them even with SlowRequest set.
	SlowLog func(format string, args ...any)
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (cmd/vnnd's
	// -pprof flag). Off by default: profiles expose enough about a
	// node's workload that they are opt-in.
	EnablePprof bool
	// DataDir is the model registry's persistence directory (cmd/vnnd's
	// -data-dir flag): registry.json snapshot plus transitions.log. Empty
	// means registry state lives for the process only.
	DataDir string
	// DefaultGate applies to model submissions that carry no gate of
	// their own (cmd/vnnd's -gate flag). Nil means ungated submissions
	// are admitted without analysis.
	DefaultGate *vnn.GateSpec
	// NodeID is this node's stable identity in fleet observability: it
	// keys the node's block in /v1/fleet/metrics and stamps every trace
	// segment the node records. Empty derives hostname-<4 hex> once at
	// boot (stable for the process lifetime; set it explicitly for
	// identities that survive restarts).
	NodeID string
	// TenantCap is the hard cardinality cap on per-tenant metric labels
	// (<= 0 means obs.DefaultTenantCap): the first TenantCap distinct
	// X-API-Key values get their own series, everything after accounts
	// under the "other" tenant.
	TenantCap int
	// Log receives operational diagnostics (registry recovery and
	// persistence problems); nil discards them.
	Log func(format string, args ...any)
}

// Server is the verification service. Create with New, mount as an
// http.Handler, and call Drain before process exit so in-flight queries
// deliver their anytime results.
type Server struct {
	cfg      Config
	nodeID   string
	cache    *Cache
	monitors *monitorCache
	sched    *Scheduler
	jobs     *registry
	mux      *http.ServeMux
	start    time.Time

	// shards are the inference plane's per-core serving lanes (see
	// inferShard): each owns its kernel scratch outright, so the hot
	// path never contends on a sync.Pool. workloads remembers served
	// (network, region, options) triples for by-fingerprint requests.
	shards    *inferShards
	workloads *workloadCache

	// fleet is the replication peer (see fleet.go for the Store
	// implementation); its endpoints are always mounted, its reconcile
	// loop runs only when Config.Peers is non-empty.
	fleet *vnnfleet.Peer

	// registry is the verified-rollout plane (see registry.go for the
	// HTTP surface): versioned models behind certification gates, served
	// through /v1/infer?model=. Recovery runs asynchronously from New;
	// /readyz reports its completion.
	registry *vnnregistry.Registry

	// obs is the flight recorder and histogram set (see obs.go).
	obs *serverObs

	// queryCtx parents every query; cancelQueries is the drain switch.
	queryCtx      context.Context
	cancelQueries context.CancelFunc
	draining      atomic.Bool
	// drainMu serializes admission against Drain: a request is either
	// admitted (and then always waited for) or sees the draining flag —
	// never admitted after Drain stopped waiting. It also keeps wg.Add
	// strictly before Drain's wg.Wait.
	drainMu sync.Mutex
	wg      sync.WaitGroup // async (wait:false) queries in flight

	queries        atomic.Int64
	analyzes       atomic.Int64
	falsifications atomic.Int64
	nodes          atomic.Int64
	pivots         atomic.Int64
	inferRequests  atomic.Int64
	inferInputs    atomic.Int64
	inferFlagged   atomic.Int64

	// analysisMu guards analysisKinds, the per-kind count of analyses
	// served through /v1/analyze.
	analysisMu    sync.Mutex
	analysisKinds map[string]int64
}

// countAnalysis bumps the per-kind analysis counters (server snapshot and
// process-wide expvar map).
func (s *Server) countAnalysis(kind string) {
	s.analysisMu.Lock()
	s.analysisKinds[kind]++
	s.analysisMu.Unlock()
	xAnalysisKinds.Add(kind, 1)
}

// analysisCounts snapshots the per-kind analysis counters.
func (s *Server) analysisCounts() map[string]int64 {
	s.analysisMu.Lock()
	defer s.analysisMu.Unlock()
	out := make(map[string]int64, len(s.analysisKinds))
	for k, v := range s.analysisKinds {
		out[k] = v
	}
	return out
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 32 << 20
	}
	qctx, cancel := context.WithCancel(context.Background())
	nodeID := cfg.NodeID
	if nodeID == "" {
		nodeID = defaultNodeID()
	}
	s := &Server{
		cfg:           cfg,
		nodeID:        nodeID,
		cache:         NewCache(cfg.CacheEntries),
		monitors:      newMonitorCache(cfg.CacheEntries),
		shards:        newInferShards(cfg.InferWorkers),
		workloads:     newWorkloadCache(cfg.CacheEntries),
		sched:         NewScheduler(cfg.MaxConcurrent, cfg.QueueDepth),
		jobs:          newRegistry(),
		start:         time.Now(),
		obs:           newServerObs(cfg, nodeID),
		queryCtx:      qctx,
		cancelQueries: cancel,
		analysisKinds: make(map[string]int64),
	}
	// The scheduler reports its wait/run decomposition into the shared
	// histograms (set before any traffic can reach RunAdmitted).
	s.sched.queueWait = s.obs.queueWait
	s.sched.runTime = s.obs.runTime
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/verify", s.handleVerify)
	mux.HandleFunc("POST /v1/infer", s.handleInfer)
	mux.HandleFunc("GET /v1/verify/{id}", s.handleGetVerify)
	mux.HandleFunc("GET /v1/verify/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/analyze", s.handleAnalyze)
	mux.HandleFunc("GET /v1/analyze/{id}", s.handleGetVerify)
	mux.HandleFunc("GET /v1/analyze/{id}/events", s.handleEvents)
	mux.HandleFunc("POST /v1/falsify", s.handleFalsify)
	mux.HandleFunc("POST /v1/models", s.handleModelSubmit)
	mux.HandleFunc("GET /v1/models", s.handleModels)
	mux.HandleFunc("GET /v1/models/{name}", s.handleModel)
	mux.HandleFunc("GET /v1/models/{name}/events", s.handleModelEvents)
	mux.HandleFunc("POST /v1/models/{name}/promote", s.handleModelPromote)
	mux.HandleFunc("POST /v1/models/{name}/rollback", s.handleModelRollback)
	mux.HandleFunc("GET /v1/workloads", s.handleWorkloads)
	mux.HandleFunc("GET /v1/fleet/metrics", s.handleFleetMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	mux.HandleFunc("GET /debug/traces/{id}", s.handleTrace)
	if cfg.EnablePprof {
		// Explicit per-handler mounts: importing net/http/pprof only
		// registers on http.DefaultServeMux, which this server never
		// serves, so without this flag /debug/pprof/ stays 404.
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.registry = vnnregistry.New(vnnregistry.Config{
		Dir:          cfg.DataDir,
		Compile:      s.registryCompile,
		BuildMonitor: s.registryBuildMonitor,
		ImportMonitor: func(m *vnn.Monitor) {
			// Recovered serving monitors also prime the by-content monitor
			// cache, so monitor_fingerprint requests work across restarts.
			s.monitors.importContent(m)
		},
		Logf: cfg.Log,
	})
	// Recovery runs off the boot path so the HTTP surface is up
	// immediately; /readyz answers 503 until it completes. The goroutine
	// joins the drain waitgroup, and its recompiles run under queryCtx, so
	// Drain interrupts an in-flight recovery rather than racing it.
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		s.registry.Recover(s.queryCtx)
	}()
	s.fleet = vnnfleet.NewPeer(s, vnnfleet.Options{
		Interval: cfg.FleetInterval,
		Recorder: s.obs.rec,
		Latency:  s.obs.reconcileTime,
	})
	s.fleet.Mount(mux)
	if len(cfg.Peers) > 0 {
		// The loop lives under the query context: drain (or process exit)
		// cancels it, and the loop also exits on its own once the store
		// reports draining.
		go s.fleet.Run(qctx, cfg.Peers)
	}
	s.mux = mux
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// NodeID returns this node's stable observability identity.
func (s *Server) NodeID() string { return s.nodeID }

// defaultNodeID derives a boot-stable node identity: hostname plus a
// short random suffix, so co-hosted nodes (tests, CI fleets on one
// machine) never collide in the federation's nodes map.
func defaultNodeID() string {
	host, err := os.Hostname()
	if err != nil || host == "" {
		host = "vnnd"
	}
	return fmt.Sprintf("%s-%04x", host, rand.Uint32()&0xffff)
}

// startTrace opens the request's trace segment. A request carrying a
// valid W3C traceparent joins the caller's distributed trace — its
// trace id is adopted and the caller's span id recorded as the remote
// parent — while the local id (job id for verify/analyze) keeps the
// trace-id=job-id contract either way.
func (s *Server) startTrace(r *http.Request, route, id string) *obs.Trace {
	if tp, ok := obs.ParseTraceparent(r.Header.Get("traceparent")); ok {
		return s.obs.rec.StartRemote(route, id, tp)
	}
	return s.obs.rec.Start(route, id)
}

// tenantFor resolves the request's tenant from its X-API-Key header
// (absent key → the anonymous tenant; past the cardinality cap → the
// overflow tenant). Allocation-free for known tenants, which keeps the
// /v1/infer hot path at 0 allocs/op with accounting on.
func (s *Server) tenantFor(r *http.Request) *obs.TenantStats {
	return s.obs.tenants.Tenant(r.Header.Get("X-API-Key"))
}

// Cache exposes the compile cache (read-mostly: stats and tests).
func (s *Server) Cache() *Cache { return s.cache }

// Drain moves the server into drain mode: new queries are rejected with
// 503 while everything already admitted keeps running. Queries get grace
// to finish on their own; whatever is still running afterwards is
// interrupted through context cancellation, which makes each query
// deliver its anytime Result (best witness and tightest proven bound at
// the moment of interruption) through its normal response path — never a
// dropped connection or a bare error. Drain returns once every async
// query has finished; synchronous responses are written by their HTTP
// handlers, which the caller's http.Server.Shutdown awaits (see
// cmd/vnnd). Safe to call repeatedly.
func (s *Server) Drain(grace time.Duration) {
	s.drainMu.Lock()
	s.draining.Store(true)
	s.drainMu.Unlock()
	if grace > 0 {
		deadline := time.Now().Add(grace)
		for time.Now().Before(deadline) {
			// Admitted covers the whole admission-token lifetime, so a
			// query between Admit and its first scheduler counter still
			// gets its grace.
			if s.sched.Stats().Admitted == 0 {
				break
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	s.cancelQueries()
	s.wg.Wait()
	// Every gate run has finished; release the transition log handle so
	// the data dir is clean for the next process.
	s.registry.Close()
}

// Draining reports whether Drain has been initiated.
func (s *Server) Draining() bool { return s.draining.Load() }

// QueryOptions is the request-level slice of vnn.Options. Workers left at
// 0 receives the scheduler's fair share; an explicit value is honored
// as-is (fixed worker counts are what make answers bitwise reproducible
// across runs and against the CLI).
type QueryOptions struct {
	Tighten  bool `json:"tighten,omitempty"`
	Workers  int  `json:"workers,omitempty"`
	Parallel bool `json:"parallel,omitempty"`
	MaxNodes int  `json:"max_nodes,omitempty"`
}

// VerifyRequest is the POST /v1/verify body.
type VerifyRequest struct {
	// Network is the canonical network JSON (see vnn.MarshalNetwork).
	Network json.RawMessage `json:"network"`
	// Region selects a named case-study region or gives an explicit box.
	Region vnn.RegionSpec `json:"region"`
	// Properties is the batch to answer on the shared compilation.
	Properties []vnn.PropertySpec `json:"properties"`
	Options    QueryOptions       `json:"options"`
	// TimeoutMS bounds the whole query including any compile it triggers;
	// 0 falls back to the server's default. An expired budget yields
	// anytime results, not an error.
	TimeoutMS int `json:"timeout_ms,omitempty"`
	// Wait false turns the call asynchronous: the response is 202 with
	// the job id for /v1/verify/{id} and its /events stream.
	Wait *bool `json:"wait,omitempty"`
}

// VerifyResponse is the verify answer: the shared wire Report plus
// service metadata. CompileMS is the build cost of the compiled artifact
// the query used, whether or not this request paid it (CacheHit says).
type VerifyResponse struct {
	ID          string  `json:"id"`
	Fingerprint string  `json:"fingerprint"`
	CacheHit    bool    `json:"cache_hit"`
	CompileMS   float64 `json:"compile_ms"`
	vnn.Report
}

// AcceptedResponse acknowledges an async query.
type AcceptedResponse struct {
	ID          string `json:"id"`
	Fingerprint string `json:"fingerprint,omitempty"`
	Status      string `json:"status"`
}

// FalsifyRequest is the POST /v1/falsify body.
type FalsifyRequest struct {
	Network  json.RawMessage `json:"network"`
	Region   vnn.RegionSpec  `json:"region"`
	Outputs  []int           `json:"outputs"`
	Restarts int             `json:"restarts,omitempty"`
	Steps    int             `json:"steps,omitempty"`
	Seed     int64           `json:"seed,omitempty"`
}

// FalsifyResponse reports the strongest violating input found.
type FalsifyResponse struct {
	Value       float64   `json:"value"`
	Best        []float64 `json:"best,omitempty"`
	Output      int       `json:"output"`
	Evaluations int       `json:"evaluations"`
}

// errorResponse is the JSON error envelope.
type errorResponse struct {
	Error string `json:"error"`
}

// preparedQuery is a parsed, validated verify request.
type preparedQuery struct {
	net         *vnn.Network
	region      *vnn.Region
	props       []vnn.Property
	fingerprint string
	compileOpts vnn.Options
}

// prepare parses the request into engine values and fingerprints the
// compile workload.
func (s *Server) prepare(req *VerifyRequest) (*preparedQuery, error) {
	if len(req.Network) == 0 {
		return nil, fmt.Errorf("request needs a network")
	}
	net, err := vnn.UnmarshalNetwork(req.Network)
	if err != nil {
		return nil, err
	}
	region, err := req.Region.Region()
	if err != nil {
		return nil, err
	}
	if len(req.Properties) == 0 {
		return nil, fmt.Errorf("request needs at least one property")
	}
	props := make([]vnn.Property, len(req.Properties))
	for i := range req.Properties {
		if props[i], err = req.Properties[i].Property(); err != nil {
			return nil, fmt.Errorf("property %d: %w", i, err)
		}
		if err := req.Properties[i].ValidateFor(net); err != nil {
			return nil, fmt.Errorf("property %d: %w", i, err)
		}
	}
	compileOpts := vnn.Options{Tighten: req.Options.Tighten, Workers: req.Options.Workers}
	fp, err := vnn.Fingerprint(net, region, compileOpts)
	if err != nil {
		return nil, err
	}
	return &preparedQuery{
		net:         net,
		region:      region,
		props:       props,
		fingerprint: fp,
		compileOpts: compileOpts,
	}, nil
}

func (s *Server) handleVerify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req VerifyRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	q, err := s.prepare(&req)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Admission happens at submit time so overload surfaces as immediate
	// backpressure for sync and async clients alike; runVerify releases
	// the token. Held under drainMu so a request is never admitted after
	// Drain stopped waiting (and wg.Add always precedes Drain's wg.Wait).
	async := req.Wait != nil && !*req.Wait
	s.drainMu.Lock()
	if s.draining.Load() {
		s.drainMu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if err := s.sched.Admit(); err != nil {
		s.drainMu.Unlock()
		writeError(w, statusFor(err), err.Error())
		return
	}
	if async {
		s.wg.Add(1)
	}
	s.drainMu.Unlock()
	jb := s.jobs.create(q.fingerprint)
	// The trace shares the job id, so the id every response (and 202
	// acknowledgment) echoes also addresses /debug/traces/{id}; an
	// inbound traceparent additionally enrolls it in the caller's
	// distributed trace.
	tr := s.startTrace(r, "/v1/verify", jb.id)
	tr.Root().SetAttr("fingerprint", q.fingerprint)
	tn := s.tenantFor(r)

	if !async {
		resp, err := s.runVerify(r.Context(), jb, tr, tn, q, &req)
		if err != nil {
			writeError(w, statusFor(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, resp)
		return
	}
	go func() {
		defer s.wg.Done()
		// Async queries outlive their HTTP request; only the per-request
		// deadline and server drain bound them.
		s.runVerify(s.queryCtx, jb, tr, tn, q, &req)
	}()
	writeJSON(w, http.StatusAccepted, AcceptedResponse{
		ID: jb.id, Fingerprint: q.fingerprint, Status: "running",
	})
}

// runVerify executes one prepared query under admission control and
// records the outcome on its job. The compile, if this query has to
// perform it, runs under the server's lifetime context rather than the
// request's: a compile is shared work (other requests may be waiting on
// the same fingerprint), so one impatient client must not abort it —
// only server drain can.
//
// The trace's phase spans decompose the request: "queue" (admission
// wait), "cache" (lookup, with a "compile" child on a miss whose
// tighten/encode children come from internal/verify's phase clocks),
// "solve" (branch-and-bound, one child per property from the progress
// stream). The root's children never overlap, so their durations sum to
// at most the trace's wall time. The trace finishes when runVerify
// returns — it covers the work, not the HTTP response write.
func (s *Server) runVerify(parent context.Context, jb *job, tr *obs.Trace, tn *obs.TenantStats, q *preparedQuery, req *VerifyRequest) (*VerifyResponse, error) {
	start := time.Now()
	defer tr.Finish()
	defer observeSince(s.obs.verifyLatency, start)
	defer func() { tn.Route("/v1/verify").Count(time.Since(start)) }()
	timeout := time.Duration(req.TimeoutMS) * time.Millisecond
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	var qctx context.Context
	var cancel context.CancelFunc
	if timeout > 0 {
		qctx, cancel = context.WithTimeout(parent, timeout)
	} else {
		qctx, cancel = context.WithCancel(parent)
	}
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel) // drain interrupts the query
	defer stop()

	root := tr.Root()
	queueSpan := root.Child("queue")
	var resp *VerifyResponse
	err := s.sched.RunAdmitted(qctx, tn, func(ctx context.Context, fairWorkers int) error {
		queueSpan.End()
		root.SetAttr("workers", fairWorkers)
		opts := q.compileOpts
		if opts.Workers == 0 {
			opts.Workers = fairWorkers
		}
		cacheSpan := root.Child("cache")
		cn, hit, err := s.cache.GetOrCompile(ctx, q.fingerprint, func() (*vnn.CompiledNetwork, error) {
			return s.compileTraced(cacheSpan, q.net, q.region, opts)
		})
		cacheSpan.SetAttr("hit", hit)
		cacheSpan.End()
		if err != nil {
			return err
		}
		qopts := opts
		qopts.Parallel = req.Options.Parallel
		qopts.MaxNodes = req.Options.MaxNodes
		solveSpan := root.Child("solve")
		ps := vnn.NewProgressSpans(solveSpan)
		qopts.Progress = func(ev vnn.Event) {
			jb.publish(ev)
			ps.Observe(ev)
		}
		results, err := vnn.Verify(ctx, cn.WithOptions(qopts), q.props...)
		ps.Close()
		if err != nil {
			solveSpan.End()
			return err
		}
		var nodes, pivots int64
		for _, res := range results {
			nodes += int64(res.Stats.Nodes)
			pivots += int64(res.Stats.LPPivots)
		}
		solveSpan.SetAttr("nodes", nodes)
		solveSpan.SetAttr("lp_pivots", pivots)
		solveSpan.End()
		s.nodes.Add(nodes)
		s.pivots.Add(pivots)
		xNodes.Add(nodes)
		xLPPivots.Add(pivots)
		resp = &VerifyResponse{
			ID:          jb.id,
			Fingerprint: q.fingerprint,
			CacheHit:    hit,
			CompileMS:   float64(cn.CompileTime().Microseconds()) / 1e3,
			Report:      vnn.NewReport(q.net, results),
		}
		return nil
	})
	queueSpan.End() // no-op if fn ran; ends the wait if admission failed
	// Counter write order: nodes/pivots land strictly before queries, so
	// a /metrics snapshot that reads queries first (see Metrics) never
	// shows a counted query whose solver effort is missing.
	s.queries.Add(1)
	xQueries.Add(1)
	jb.finish(resp, err)
	return resp, err
}

// compileTraced wraps vnn.Compile with a "compile" span under parent,
// attributing the pass to LP tightening vs MILP encoding from
// internal/verify's process-wide phase clocks. The deltas are read
// around this compile only; concurrent compiles in other requests can
// inflate them (they are attribution hints, not exact sub-timers), so
// each child is clamped to the span's own duration.
func (s *Server) compileTraced(parent *obs.Span, net *vnn.Network, region *vnn.Region, opts vnn.Options) (*vnn.CompiledNetwork, error) {
	sp := parent.Child("compile")
	t0, e0 := verify.TightenNanos(), verify.EncodeNanos()
	buildStart := time.Now()
	cn, err := vnn.Compile(s.queryCtx, net, region, opts)
	wall := time.Since(buildStart)
	clamp := func(d time.Duration) time.Duration {
		if d > wall {
			return wall
		}
		return d
	}
	sp.ChildTimed("tighten", clamp(time.Duration(verify.TightenNanos()-t0)))
	sp.ChildTimed("encode", clamp(time.Duration(verify.EncodeNanos()-e0)))
	sp.SetAttr("tighten_passes", verify.TightenPasses())
	sp.SetAttr("encode_passes", verify.EncodePasses())
	sp.End()
	s.obs.compileTime.Observe(int64(wall))
	return cn, err
}

func (s *Server) handleGetVerify(w http.ResponseWriter, r *http.Request) {
	jb := s.jobs.get(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown query id")
		return
	}
	if !jb.finished() {
		writeJSON(w, http.StatusAccepted, AcceptedResponse{
			ID: jb.id, Fingerprint: jb.fingerprint, Status: "running",
		})
		return
	}
	resp, err := jb.result()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// progressEvent is the SSE wire form of one vnn.Event. Analysis is the
// index of the emitting analysis within an /v1/analyze batch (always 0
// for /v1/verify jobs).
type progressEvent struct {
	Analysis  int      `json:"analysis"`
	Property  int      `json:"property"`
	Nodes     int      `json:"nodes"`
	Open      int      `json:"open"`
	Incumbent *float64 `json:"incumbent,omitempty"`
	Bound     float64  `json:"bound"`
	ElapsedMS float64  `json:"elapsed_ms"`
}

func toProgressEvent(ev vnn.Event) progressEvent {
	pe := progressEvent{
		Analysis:  ev.Analysis,
		Property:  ev.Property,
		Nodes:     ev.Nodes,
		Open:      ev.Open,
		Bound:     ev.Bound,
		ElapsedMS: float64(ev.Elapsed.Microseconds()) / 1e3,
	}
	if ev.HasIncumbent {
		inc := ev.Incumbent
		pe.Incumbent = &inc
	}
	return pe
}

func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	jb := s.jobs.get(r.PathValue("id"))
	if jb == nil {
		writeError(w, http.StatusNotFound, "unknown query id")
		return
	}
	s.streamJob(w, r, jb)
}

// streamJob serves one job's SSE stream: replayed progress, live events,
// and the terminal result. Shared by the verify/analyze event routes and
// the model gate's /v1/models/{name}/events.
func (s *Server) streamJob(w http.ResponseWriter, r *http.Request, jb *job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "response writer cannot stream")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	replay, live, unsubscribe := jb.subscribe()
	defer unsubscribe()

	status := "running"
	if jb.finished() {
		status = "done"
	}
	writeSSE(w, "job", AcceptedResponse{ID: jb.id, Fingerprint: jb.fingerprint, Status: status})
	for _, ev := range replay {
		writeSSE(w, "progress", toProgressEvent(ev))
	}
	fl.Flush()

	finish := func() {
		resp, err := jb.result()
		if err != nil {
			writeSSE(w, "error", errorResponse{Error: err.Error()})
		} else {
			writeSSE(w, "result", resp)
		}
		fl.Flush()
	}
	for {
		select {
		case ev := <-live:
			writeSSE(w, "progress", toProgressEvent(ev))
			fl.Flush()
		case <-jb.done:
			// Flush any events that raced with completion, then close
			// with the terminal result.
			for {
				select {
				case ev := <-live:
					writeSSE(w, "progress", toProgressEvent(ev))
				default:
					finish()
					return
				}
			}
		case <-r.Context().Done():
			return
		}
	}
}

func (s *Server) handleFalsify(w http.ResponseWriter, r *http.Request) {
	if s.draining.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	var req FalsifyRequest
	if err := decodeJSON(w, r, s.cfg.MaxBodyBytes, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	net, err := vnn.UnmarshalNetwork(req.Network)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	region, err := req.Region.Region()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Bound the work a single request can demand; the endpoint is a cheap
	// pre-pass, not an open-ended compute API.
	if req.Restarts < 0 || req.Restarts > maxFalsifyRestarts || req.Steps < 0 || req.Steps > maxFalsifySteps {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("restarts must be in [0, %d] and steps in [0, %d]", maxFalsifyRestarts, maxFalsifySteps))
		return
	}
	for _, o := range req.Outputs {
		if o < 0 || o >= net.OutputDim() {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("output %d of %d", o, net.OutputDim()))
			return
		}
	}

	qctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	stop := context.AfterFunc(s.queryCtx, cancel)
	defer stop()

	start := time.Now()
	tr := s.startTrace(r, "/v1/falsify", "")
	tn := s.tenantFor(r)
	defer observeSince(s.obs.falsifyLatency, start)
	defer func() { tn.Route("/v1/falsify").Count(time.Since(start)) }()
	defer tr.Finish()
	queueSpan := tr.Root().Child("queue")
	var resp *FalsifyResponse
	err = s.sched.Run(qctx, tn, func(ctx context.Context, _ int) error {
		queueSpan.End()
		runSpan := tr.Root().Child("falsify")
		defer runSpan.End()
		fr, err := vnn.FalsifyCtx(ctx, net, region, req.Outputs, vnn.FalsifyOptions{
			Restarts: req.Restarts,
			Steps:    req.Steps,
			Seed:     req.Seed,
		})
		if err != nil {
			return err
		}
		resp = &FalsifyResponse{
			Value:       fr.Value,
			Best:        fr.Best,
			Output:      fr.Output,
			Evaluations: fr.Evaluations,
		}
		return nil
	})
	queueSpan.End()
	if err != nil {
		writeError(w, statusFor(err), err.Error())
		return
	}
	s.falsifications.Add(1)
	xFalsifications.Add(1)
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	status := "ok"
	if s.draining.Load() {
		status = "draining"
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"status":    status,
		"uptime_ms": msSince(s.start),
		"build":     Build(),
	})
}

// handleMetrics serves the metrics snapshot: JSON by default (the
// format every existing consumer parses), Prometheus text exposition
// when the scraper negotiates it (Accept: text/plain or
// ?format=prometheus — see prom.go).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r) {
		s.writeProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.Metrics())
}

// statusFor maps a run-stage error to its HTTP status: saturation to 429,
// an expired budget that never got to run to 504, drain/disconnect to
// 503, and anything else to 500 — by this point the request has passed
// validation (prepare rejects malformed inputs with 400 directly), so a
// failure here is the server's inability to answer, not the client's
// fault.
func statusFor(err error) int {
	switch {
	case errors.Is(err, ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

// decodeJSON strictly decodes a bounded request body into v.
func decodeJSON(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) error {
	r.Body = http.MaxBytesReader(w, r.Body, maxBytes)
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("decode request: %w", err)
	}
	return nil
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, errorResponse{Error: msg})
}

// writeSSE emits one server-sent event with a JSON payload.
func writeSSE(w io.Writer, event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", event, data)
}

func msSince(t time.Time) float64 {
	return float64(time.Since(t).Microseconds()) / 1e3
}
