// Fleet metrics federation: GET /v1/fleet/metrics merges this node's
// /metrics snapshot with every configured peer's into one document —
// per-node blocks preserved under "nodes" (keyed by each node's stable
// id), plus an "aggregate" block where counters sum exactly and
// histograms merge bucket-wise (log2 boundaries are identical on every
// node by construction, so the merge is elementwise addition — see
// internal/obs). The same content negotiation as /metrics applies:
// JSON by default, Prometheus text exposition of the aggregate with
// Accept: text/plain or ?format=prometheus.
//
// Federation is one-hop by design: a node asks its peers for their
// LOCAL snapshots (never their federated view), so a fully-connected
// fleet cannot loop and a partially-connected one degrades to what the
// asked node can see. Unreachable peers land in "errors" instead of
// failing the document.

package vnnserver

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
)

// fleetFetchTimeout bounds each peer metrics/trace fetch; a slow peer
// delays the federated document, never hangs it.
const fleetFetchTimeout = 5 * time.Second

// FleetMetrics is the GET /v1/fleet/metrics document.
type FleetMetrics struct {
	// Node is the serving node's id (whose view this is).
	Node string `json:"node"`
	// Nodes maps stable node id -> that node's full local snapshot.
	Nodes map[string]Metrics `json:"nodes"`
	// Errors maps peer base URL -> fetch error for unreachable peers.
	Errors map[string]string `json:"errors,omitempty"`
	// Aggregate is the fleet-wide merge: counters summed, histograms
	// merged bucket-wise, tenants merged by label. Per-node-identity
	// fields (build, registry, shards, scheduler capacities) are not
	// meaningful fleet-wide and stay zero; read them per node.
	Aggregate Metrics `json:"aggregate"`
}

func (s *Server) handleFleetMetrics(w http.ResponseWriter, r *http.Request) {
	local := s.Metrics()
	fm := FleetMetrics{
		Node:  s.nodeID,
		Nodes: map[string]Metrics{local.Node: local},
	}
	ctx, cancel := context.WithTimeout(r.Context(), fleetFetchTimeout)
	defer cancel()
	for _, base := range s.cfg.Peers {
		pm, err := fetchPeerMetrics(ctx, base)
		if err != nil {
			if fm.Errors == nil {
				fm.Errors = make(map[string]string)
			}
			fm.Errors[base] = err.Error()
			continue
		}
		key := pm.Node
		if key == "" {
			key = base // pre-federation peer: fall back to its URL
		}
		fm.Nodes[key] = pm
	}
	for _, m := range fm.Nodes {
		mergeMetrics(&fm.Aggregate, m)
	}
	if wantsProm(r) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.WriteHeader(http.StatusOK)
		writePromFrom(w, fm.Aggregate)
		return
	}
	writeJSON(w, http.StatusOK, fm)
}

// fetchPeerMetrics pulls one peer's local /metrics JSON document.
func fetchPeerMetrics(ctx context.Context, base string) (Metrics, error) {
	var m Metrics
	body, err := fleetGet(ctx, strings.TrimSuffix(base, "/")+"/metrics")
	if err != nil {
		return m, err
	}
	if err := json.Unmarshal(body, &m); err != nil {
		return m, fmt.Errorf("decode metrics: %w", err)
	}
	return m, nil
}

// fleetGet performs one bounded intra-fleet GET and returns the body.
func fleetGet(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(http.MaxBytesReader(nil, resp.Body, 64<<20))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("HTTP %d", resp.StatusCode)
	}
	return body, nil
}

// mergeMetrics folds src into dst for the fleet aggregate: every
// cumulative counter sums exactly; histograms merge bucket-wise on
// (name, route); tenants merge by label through obs.MergeTenants.
// Gauges that describe one process (runtime) aggregate conservatively:
// goroutines and heap sum (fleet footprint), GC pause p99 and uptime
// take the max (the fleet is as old as its oldest node, as slow as its
// worst pause). Identity fields (Build, Node, Registry, Shards,
// scheduler capacities) are per-node facts and are left out.
func mergeMetrics(dst *Metrics, src Metrics) {
	dst.Queries += src.Queries
	dst.AnalyzeRequests += src.AnalyzeRequests
	dst.Falsifications += src.Falsifications
	if len(src.Analyses) > 0 && dst.Analyses == nil {
		dst.Analyses = make(map[string]int64, len(src.Analyses))
	}
	for k, v := range src.Analyses {
		dst.Analyses[k] += v
	}

	dst.Cache.Hits += src.Cache.Hits
	dst.Cache.Misses += src.Cache.Misses
	dst.Cache.Evictions += src.Cache.Evictions
	dst.Cache.Size += src.Cache.Size
	dst.Cache.Bytes += src.Cache.Bytes

	dst.Scheduler.Active += src.Scheduler.Active
	dst.Scheduler.Queued += src.Scheduler.Queued
	dst.Scheduler.Rejected += src.Scheduler.Rejected
	dst.Scheduler.Completed += src.Scheduler.Completed

	dst.Infer.Requests += src.Infer.Requests
	dst.Infer.Inputs += src.Infer.Inputs
	dst.Infer.Flagged += src.Infer.Flagged
	dst.Infer.Monitors += src.Infer.Monitors
	dst.Infer.Workloads += src.Infer.Workloads

	dst.Fleet.Rounds += src.Fleet.Rounds
	dst.Fleet.SymbolsSent += src.Fleet.SymbolsSent
	dst.Fleet.SymbolsReceived += src.Fleet.SymbolsReceived
	dst.Fleet.EntriesPulled += src.Fleet.EntriesPulled
	dst.Fleet.EntriesPushed += src.Fleet.EntriesPushed
	dst.Fleet.PullRejected += src.Fleet.PullRejected
	dst.Fleet.PullSkipped += src.Fleet.PullSkipped

	dst.Nodes += src.Nodes
	dst.LPPivots += src.LPPivots
	dst.EncodePasses += src.EncodePasses
	dst.TightenPasses += src.TightenPasses
	dst.Solves += src.Solves

	dst.Runtime.Goroutines += src.Runtime.Goroutines
	dst.Runtime.HeapInuseBytes += src.Runtime.HeapInuseBytes
	if src.Runtime.GCPauseP99MS > dst.Runtime.GCPauseP99MS {
		dst.Runtime.GCPauseP99MS = src.Runtime.GCPauseP99MS
	}
	if src.Runtime.UptimeSeconds > dst.Runtime.UptimeSeconds {
		dst.Runtime.UptimeSeconds = src.Runtime.UptimeSeconds
	}
	if src.UptimeMS > dst.UptimeMS {
		dst.UptimeMS = src.UptimeMS
	}

	dst.Tenants = obs.MergeTenants(dst.Tenants, src.Tenants)
	dst.Histograms = mergeHistograms(dst.Histograms, src.Histograms)
}

// mergeHistograms folds src's wire-form histograms into dst, matching
// entries on (name, route) and appending families dst has not seen.
// Bucket boundaries are identical on every node (log2 by
// construction), so matched entries add elementwise.
func mergeHistograms(dst, src []obs.HistogramJSON) []obs.HistogramJSON {
	for _, sh := range src {
		merged := false
		for i := range dst {
			if dst[i].Name == sh.Name && dst[i].Route == sh.Route {
				dst[i].Merge(sh)
				merged = true
				break
			}
		}
		if !merged {
			cp := sh
			cp.Buckets = append([]int64(nil), sh.Buckets...)
			dst = append(dst, cp)
		}
	}
	return dst
}
