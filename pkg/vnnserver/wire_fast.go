// Hand-rolled JSON fast paths for the inference plane's bulk payloads.
//
// /v1/infer is protocol-bound: once the kernels are allocation-free and
// the network travels by fingerprint, most of a request's wall clock is
// encoding/json reflecting over [][]float64. FloatMatrix implements the
// two hot conversions directly — a byte scanner on decode, a
// strconv.AppendFloat loop on encode — with no reflection and one
// allocation for the backing array. The encoded form is byte-identical
// to encoding/json's (same float formatting rules), so clients see no
// wire change.

package vnnserver

import (
	"fmt"
	"math"
	"strconv"
)

// FloatMatrix is a [][]float64 with fast JSON paths. It is the wire type
// of the inference plane's bulk fields (inputs, monitor datasets,
// outputs); ordinary [][]float64 values assign to and from it directly.
type FloatMatrix [][]float64

// UnmarshalJSON parses [[...],...] without reflection. All rows share
// one backing array.
func (m *FloatMatrix) UnmarshalJSON(b []byte) error {
	i := skipSpace(b, 0)
	if i < len(b) && b[i] == 'n' { // null: leave the matrix nil
		return nil
	}
	if i >= len(b) || b[i] != '[' {
		return fmt.Errorf("float matrix: expected '[' at offset %d", i)
	}
	i = skipSpace(b, i+1)
	if i < len(b) && b[i] == ']' {
		*m = FloatMatrix{}
		return nil
	}
	// First pass: count rows and values so the backing array is sized
	// once (commas are an upper bound that is exact for valid input).
	rows, vals := 0, 0
	depth := 0
	for j := i - 1; j < len(b); j++ {
		switch b[j] {
		case '[':
			depth++
			if depth == 2 {
				rows++
				vals++ // a non-empty row has one more value than commas
			}
		case ']':
			depth--
		case ',':
			if depth == 2 {
				vals++
			}
		}
	}
	flat := make([]float64, 0, vals)
	out := make(FloatMatrix, 0, rows)
	for {
		if i >= len(b) || b[i] != '[' {
			return fmt.Errorf("float matrix: expected row '[' at offset %d", i)
		}
		i = skipSpace(b, i+1)
		start := len(flat)
		if i < len(b) && b[i] == ']' {
			i++
		} else {
			for {
				j := scanNumber(b, i)
				if j == i {
					return fmt.Errorf("float matrix: expected number at offset %d", i)
				}
				f, err := strconv.ParseFloat(string(b[i:j]), 64)
				if err != nil {
					return fmt.Errorf("float matrix: %w", err)
				}
				flat = append(flat, f)
				i = skipSpace(b, j)
				if i < len(b) && b[i] == ',' {
					i = skipSpace(b, i+1)
					continue
				}
				if i < len(b) && b[i] == ']' {
					i++
					break
				}
				return fmt.Errorf("float matrix: expected ',' or ']' at offset %d", i)
			}
		}
		out = append(out, flat[start:len(flat):len(flat)])
		i = skipSpace(b, i)
		if i < len(b) && b[i] == ',' {
			i = skipSpace(b, i+1)
			continue
		}
		if i < len(b) && b[i] == ']' {
			break
		}
		return fmt.Errorf("float matrix: expected ',' or ']' at offset %d", i)
	}
	*m = out
	return nil
}

// MarshalJSON renders the matrix with encoding/json's exact float
// formatting, one buffer, no reflection.
func (m FloatMatrix) MarshalJSON() ([]byte, error) {
	if m == nil {
		return []byte("null"), nil
	}
	n := 2
	for _, row := range m {
		n += 2 + len(row)*12
	}
	b := make([]byte, 0, n)
	b = append(b, '[')
	for r, row := range m {
		if r > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		for c, f := range row {
			if c > 0 {
				b = append(b, ',')
			}
			var err error
			if b, err = appendJSONFloat(b, f); err != nil {
				return nil, err
			}
		}
		b = append(b, ']')
	}
	return append(b, ']'), nil
}

// appendJSONFloat appends f exactly as encoding/json would: shortest
// round-trip form, 'f' format in the human range, 'e' with a trimmed
// exponent outside it.
func appendJSONFloat(b []byte, f float64) ([]byte, error) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return nil, fmt.Errorf("float matrix: unsupported value %v", f)
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-09" to "e-9", as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, nil
}

func skipSpace(b []byte, i int) int {
	for i < len(b) && (b[i] == ' ' || b[i] == '\t' || b[i] == '\n' || b[i] == '\r') {
		i++
	}
	return i
}

// scanNumber returns the end of the JSON number starting at i (or i if
// none); ParseFloat validates the exact grammar.
func scanNumber(b []byte, i int) int {
	j := i
	for j < len(b) {
		switch c := b[j]; {
		case c >= '0' && c <= '9', c == '+', c == '-', c == '.', c == 'e', c == 'E':
			j++
		default:
			return j
		}
	}
	return j
}
