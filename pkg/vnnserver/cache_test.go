package vnnserver_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// fakeCompile returns a distinct (empty) compiled-network pointer; cache
// mechanics tests don't need a real compilation.
func fakeCompile() (*vnn.CompiledNetwork, error) {
	return &vnn.CompiledNetwork{}, nil
}

// TestCacheLRUEvictionOrder pins strict LRU semantics: touching an entry
// protects it, the least recently used one goes first.
func TestCacheLRUEvictionOrder(t *testing.T) {
	ctx := context.Background()
	c := vnnserver.NewCache(2)
	mustGet := func(key string) bool {
		t.Helper()
		_, hit, err := c.GetOrCompile(ctx, key, fakeCompile)
		if err != nil {
			t.Fatal(err)
		}
		return hit
	}

	if hit := mustGet("A"); hit {
		t.Fatal("first A was a hit")
	}
	mustGet("B")
	if hit := mustGet("A"); !hit {
		t.Fatal("second A was not a hit")
	}
	mustGet("C") // evicts B: A was touched more recently

	if !c.Contains("A") || !c.Contains("C") {
		t.Fatal("A and C should have survived")
	}
	if c.Contains("B") {
		t.Fatal("B should have been evicted (LRU)")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Hits != 1 || st.Misses != 3 {
		t.Fatalf("stats %+v, want 1 eviction, size 2, 1 hit, 3 misses", st)
	}

	// B misses again after eviction.
	if hit := mustGet("B"); hit {
		t.Fatal("evicted B reported a hit")
	}
}

// TestCacheSingleflight64 is the satellite contract: 64 goroutines
// requesting the same fingerprint perform EXACTLY one compile —
// established not by the cache's own accounting alone but by the
// process-wide EncodePasses/TightenPasses instrumentation counters, which
// must advance by precisely one compilation's worth of passes across the
// whole stampede.
func TestCacheSingleflight64(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1)
	region := vnn.LeftOccupiedRegion()
	opts := vnn.Options{Tighten: true, Workers: 1}
	fp, err := vnn.Fingerprint(pred.Net, region, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the passes one solo compile performs.
	encBefore, tightBefore := verify.EncodePasses(), verify.TightenPasses()
	if _, err := vnn.Compile(context.Background(), pred.Net, region, opts); err != nil {
		t.Fatal(err)
	}
	encPerCompile := verify.EncodePasses() - encBefore
	tightPerCompile := verify.TightenPasses() - tightBefore
	if encPerCompile == 0 || tightPerCompile != 1 {
		t.Fatalf("reference compile: %d encode, %d tighten passes", encPerCompile, tightPerCompile)
	}

	c := vnnserver.NewCache(4)
	encBefore, tightBefore = verify.EncodePasses(), verify.TightenPasses()

	const clients = 64
	var wg sync.WaitGroup
	cns := make([]*vnn.CompiledNetwork, clients)
	hits := make([]bool, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			cns[slot], hits[slot], errs[slot] = c.GetOrCompile(context.Background(), fp,
				func() (*vnn.CompiledNetwork, error) {
					return vnn.Compile(context.Background(), pred.Net, region, opts)
				})
		}(i)
	}
	wg.Wait()

	if d := verify.EncodePasses() - encBefore; d != encPerCompile {
		t.Fatalf("64 concurrent requests performed %d encode passes, want %d (one compile)", d, encPerCompile)
	}
	if d := verify.TightenPasses() - tightBefore; d != tightPerCompile {
		t.Fatalf("64 concurrent requests performed %d tighten passes, want %d (one compile)", d, tightPerCompile)
	}
	misses := 0
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if cns[i] == nil || cns[i] != cns[0] {
			t.Fatalf("client %d got a different compiled network", i)
		}
		if !hits[i] {
			misses++
		}
	}
	if misses != 1 {
		t.Fatalf("%d cache misses across the stampede, want exactly 1", misses)
	}
	st := c.Stats()
	if st.Misses != 1 || st.Hits != clients-1 {
		t.Fatalf("cache stats %+v, want 1 miss / %d hits", st, clients-1)
	}
}

// TestCacheErrorNotCached pins that failed compiles are retried, not
// poisoned into the cache.
func TestCacheErrorNotCached(t *testing.T) {
	ctx := context.Background()
	c := vnnserver.NewCache(4)
	boom := errors.New("boom")
	calls := 0
	compile := func() (*vnn.CompiledNetwork, error) {
		calls++
		if calls == 1 {
			return nil, boom
		}
		return fakeCompile()
	}
	if _, _, err := c.GetOrCompile(ctx, "K", compile); !errors.Is(err, boom) {
		t.Fatalf("first call err = %v, want boom", err)
	}
	if c.Contains("K") {
		t.Fatal("failed compile was cached")
	}
	cn, hit, err := c.GetOrCompile(ctx, "K", compile)
	if err != nil || hit || cn == nil {
		t.Fatalf("retry: cn=%v hit=%v err=%v", cn, hit, err)
	}
	if calls != 2 {
		t.Fatalf("compile ran %d times, want 2", calls)
	}
}

// TestCacheWaiterContext pins that a waiter's dead context stops its wait
// without killing the in-flight compile for everyone else.
func TestCacheWaiterContext(t *testing.T) {
	c := vnnserver.NewCache(4)
	gate := make(chan struct{})
	started := make(chan struct{})

	ownerDone := make(chan error, 1)
	go func() {
		_, _, err := c.GetOrCompile(context.Background(), "K", func() (*vnn.CompiledNetwork, error) {
			close(started)
			<-gate
			return fakeCompile()
		})
		ownerDone <- err
	}()
	<-started

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := c.GetOrCompile(ctx, "K", fakeCompile); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter err = %v", err)
	}

	close(gate)
	if err := <-ownerDone; err != nil {
		t.Fatalf("owner: %v", err)
	}
	// The entry completed and is served from cache afterwards.
	cn, hit, err := c.GetOrCompile(context.Background(), "K", func() (*vnn.CompiledNetwork, error) {
		return nil, fmt.Errorf("must not recompile")
	})
	if err != nil || !hit || cn == nil {
		t.Fatalf("post-stampede get: cn=%v hit=%v err=%v", cn, hit, err)
	}
}
