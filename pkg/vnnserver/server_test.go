package vnnserver_test

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/nn"
	"repro/internal/verify"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// newTestServer boots a Server behind an httptest listener.
func newTestServer(t *testing.T, cfg vnnserver.Config) (*vnnserver.Server, *httptest.Server) {
	t.Helper()
	srv := vnnserver.New(cfg)
	ts := httptest.NewServer(srv)
	t.Cleanup(ts.Close)
	return srv, ts
}

// verifyBody marshals a verify request for the given predictor.
func verifyBody(t *testing.T, net *vnn.Network, props []vnn.PropertySpec, opts vnnserver.QueryOptions, wait *bool) []byte {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.VerifyRequest{
		Network:    netJSON,
		Region:     vnn.RegionSpec{Name: "left_occupied"},
		Properties: props,
		Options:    opts,
		Wait:       wait,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postVerify POSTs a verify request and decodes the response into out,
// returning the HTTP status.
func postVerify(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/verify", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode
}

// TestServer64ConcurrentIdenticalOneCompile is the subsystem's acceptance
// contract: 64 concurrent identical requests against vnnd perform exactly
// one compile — pinned by the process-wide EncodePasses/TightenPasses
// instrumentation counters — and every response's Table II width-10 value
// is bit-identical to the CLI path (vnn.Compile + vnn.Verify with the
// same pinned worker count).
func TestServer64ConcurrentIdenticalOneCompile(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 1) // a width-10 Table II shape
	outs := pred.MuLatOutputs()
	ctx := context.Background()

	// The CLI path, measuring the passes one compile performs.
	encBefore, tightBefore := verify.EncodePasses(), verify.TightenPasses()
	cliOpts := vnn.Options{Tighten: true, Workers: 1}
	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), cliOpts)
	if err != nil {
		t.Fatal(err)
	}
	encPerCompile := verify.EncodePasses() - encBefore
	tightPerCompile := verify.TightenPasses() - tightBefore
	ref, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(outs...))
	if err != nil {
		t.Fatal(err)
	}
	if !ref.Exact {
		t.Fatal("CLI reference did not conclude")
	}

	_, ts := newTestServer(t, vnnserver.Config{QueueDepth: 128})
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: outs}},
		vnnserver.QueryOptions{Tighten: true, Workers: 1}, nil)

	encBefore, tightBefore = verify.EncodePasses(), verify.TightenPasses()
	const clients = 64
	responses := make([]vnnserver.VerifyResponse, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			statuses[slot] = postVerify(t, ts.URL, body, &responses[slot])
		}(i)
	}
	wg.Wait()

	// Exactly one compile across the whole stampede.
	if d := verify.EncodePasses() - encBefore; d != encPerCompile {
		t.Fatalf("server performed %d encode passes for %d identical requests, want %d (one compile)",
			d, clients, encPerCompile)
	}
	if d := verify.TightenPasses() - tightBefore; d != tightPerCompile {
		t.Fatalf("server performed %d tighten passes, want %d (one compile)", d, tightPerCompile)
	}

	misses := 0
	for i, vr := range responses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if !vr.CacheHit {
			misses++
		}
		if vr.Fingerprint != responses[0].Fingerprint {
			t.Fatalf("request %d fingerprint diverged", i)
		}
		if vr.Worst != "proved" || len(vr.Results) != 1 || !vr.Results[0].Exact {
			t.Fatalf("request %d: worst=%s results=%+v", i, vr.Worst, vr.Results)
		}
		// Bit-identical to the CLI path: JSON emits the shortest float64
		// representation that round-trips, so equality here is bitwise.
		if vr.Results[0].Value == nil || *vr.Results[0].Value != ref.Value {
			t.Fatalf("request %d value %v, CLI path %v (not bit-identical)", i, vr.Results[0].Value, ref.Value)
		}
	}
	if misses != 1 {
		t.Fatalf("%d cache misses across %d identical requests, want exactly 1", misses, clients)
	}
}

// sseEvent is one parsed server-sent event.
type sseEvent struct {
	name string
	data string
}

// readSSE parses server-sent events from r, passing each to visit; it
// stops after a terminal result/error event or when the stream ends.
func readSSE(t *testing.T, r io.Reader, visit func(sseEvent) bool) {
	t.Helper()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var cur sseEvent
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.name = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.name != "" {
				if !visit(cur) {
					return
				}
				cur = sseEvent{}
			}
		}
	}
}

// TestServerAsyncEventsAndResult covers the async path: 202 with a job
// id, SSE progress events tagged with node counts, a terminal result
// event, and the result re-fetchable by id afterwards.
func TestServerAsyncEventsAndResult(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 2, 2)
	outs := pred.MuLatOutputs()
	ctx := context.Background()

	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), vnn.Options{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(outs...))
	if err != nil {
		t.Fatal(err)
	}

	_, ts := newTestServer(t, vnnserver.Config{})
	wait := false
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: outs}},
		vnnserver.QueryOptions{Workers: 1}, &wait)

	var acc vnnserver.AcceptedResponse
	if st := postVerify(t, ts.URL, body, &acc); st != http.StatusAccepted {
		t.Fatalf("async submit status %d", st)
	}
	if acc.ID == "" || acc.Status != "running" {
		t.Fatalf("accepted response %+v", acc)
	}

	resp, err := http.Get(ts.URL + "/v1/verify/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content type %q", ct)
	}

	progress := 0
	var final vnnserver.VerifyResponse
	gotResult := false
	readSSE(t, resp.Body, func(ev sseEvent) bool {
		switch ev.name {
		case "progress":
			var pe struct {
				Property int     `json:"property"`
				Nodes    int     `json:"nodes"`
				Bound    float64 `json:"bound"`
			}
			if err := json.Unmarshal([]byte(ev.data), &pe); err != nil {
				t.Fatalf("progress payload %q: %v", ev.data, err)
			}
			if pe.Nodes <= 0 {
				t.Fatalf("progress event without nodes: %q", ev.data)
			}
			progress++
			return true
		case "result":
			if err := json.Unmarshal([]byte(ev.data), &final); err != nil {
				t.Fatalf("result payload: %v", err)
			}
			gotResult = true
			return false
		case "job":
			return true
		default:
			t.Fatalf("unexpected event %q", ev.name)
			return false
		}
	})
	if progress == 0 || !gotResult {
		t.Fatalf("stream delivered %d progress events, result=%v", progress, gotResult)
	}
	if final.ID != acc.ID || final.Worst != "proved" {
		t.Fatalf("final %+v", final)
	}
	if final.Results[0].Value == nil || *final.Results[0].Value != ref.Value {
		t.Fatalf("async value %v != direct %v", final.Results[0].Value, ref.Value)
	}

	// The finished result stays retrievable by id.
	var again vnnserver.VerifyResponse
	getJSON(t, ts.URL+"/v1/verify/"+acc.ID, http.StatusOK, &again)
	if again.ID != acc.ID || len(again.Results) != 1 {
		t.Fatalf("refetch %+v", again)
	}
}

// getJSON GETs url expecting the given status and decodes into out.
func getJSON(t *testing.T, url string, wantStatus int, out any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		msg, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: %s (%s)", url, resp.Status, msg)
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
}

// TestServerDrainAnytime pins the drain contract end to end: a query
// interrupted by drain still answers — Inconclusive, with a finite
// proven upper bound that soundly dominates anything a falsifier can
// reach — and the draining server rejects new work with 503.
func TestServerDrainAnytime(t *testing.T) {
	// Big enough that the solve cannot finish before drain hits it.
	pred := core.NewPredictorNet(2, 16, 2, 5)
	outs := pred.MuLatOutputs()

	srv, ts := newTestServer(t, vnnserver.Config{})
	wait := false
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: outs}},
		vnnserver.QueryOptions{Workers: 1}, &wait)

	var acc vnnserver.AcceptedResponse
	if st := postVerify(t, ts.URL, body, &acc); st != http.StatusAccepted {
		t.Fatalf("submit status %d", st)
	}

	resp, err := http.Get(ts.URL + "/v1/verify/" + acc.ID + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	var final vnnserver.VerifyResponse
	gotResult := false
	drained := false
	readSSE(t, resp.Body, func(ev sseEvent) bool {
		switch ev.name {
		case "progress":
			if !drained {
				// The query is provably mid-search: drain now. Drain
				// blocks until the interrupted query has delivered its
				// anytime result.
				srv.Drain(0)
				drained = true
			}
			return true
		case "result":
			gotResult = json.Unmarshal([]byte(ev.data), &final) == nil
			return false
		default:
			return true
		}
	})
	if !drained {
		t.Fatal("no progress event ever arrived")
	}
	if !gotResult {
		t.Fatal("drained query delivered no result")
	}
	res := final.Results[0]
	if res.Outcome != "inconclusive" || res.Exact {
		t.Fatalf("interrupted query: outcome=%s exact=%v, want inconclusive", res.Outcome, res.Exact)
	}
	if res.UpperBound == nil {
		t.Fatal("interrupted query carries no finite anytime upper bound")
	}
	// Soundness of the anytime bound: no concrete input may beat it.
	atk, err := vnn.Falsify(pred.Net, vnn.LeftOccupiedRegion(), outs,
		vnn.FalsifyOptions{Restarts: 3, Steps: 40, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if atk.Value > *res.UpperBound+1e-6 {
		t.Fatalf("falsifier reached %g above the 'sound' anytime bound %g", atk.Value, *res.UpperBound)
	}

	// Draining state is observable and new work is rejected.
	var health struct {
		Status string `json:"status"`
	}
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &health)
	if health.Status != "draining" {
		t.Fatalf("healthz status %q, want draining", health.Status)
	}
	if st := postVerify(t, ts.URL, body, nil); st != http.StatusServiceUnavailable {
		t.Fatalf("post-drain verify status %d, want 503", st)
	}
}

// TestServerBackpressure pins the HTTP mapping of a saturated queue: 429.
func TestServerBackpressure(t *testing.T) {
	pred := core.NewPredictorNet(2, 16, 2, 7)
	srv, ts := newTestServer(t, vnnserver.Config{MaxConcurrent: 1, QueueDepth: -1})

	wait := false
	slow := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Workers: 1}, &wait)
	var acc vnnserver.AcceptedResponse
	if st := postVerify(t, ts.URL, slow, &acc); st != http.StatusAccepted {
		t.Fatalf("slow submit status %d", st)
	}
	// Wait until the slow query occupies the only run slot.
	var m vnnserver.Metrics
	for i := 0; ; i++ {
		getJSON(t, ts.URL+"/metrics", http.StatusOK, &m)
		if m.Scheduler.Active == 1 {
			break
		}
		if i > 2000 {
			t.Fatal("slow query never became active")
		}
	}

	var errResp struct {
		Error string `json:"error"`
	}
	if st := postVerify(t, ts.URL, slow, &errResp); st != http.StatusTooManyRequests {
		t.Fatalf("saturated verify status %d, want 429", st)
	}
	if !strings.Contains(errResp.Error, "queue") {
		t.Fatalf("429 error %q", errResp.Error)
	}
	srv.Drain(0) // interrupt the slow query so the test exits promptly
}

// TestServerFalsifyAndValidation covers the falsify endpoint and the
// request validation surface.
func TestServerFalsifyAndValidation(t *testing.T) {
	_, ts := newTestServer(t, vnnserver.Config{})

	// Falsify on the hand-made |x0-x1| network: the attack must find a
	// positive value and can never beat the true maximum of 1.
	abs := &nn.Network{
		Name: "absdiff",
		Layers: []*nn.Layer{
			{W: [][]float64{{1, -1}, {-1, 1}}, B: []float64{0, 0}, Act: nn.ReLU},
			{W: [][]float64{{1, 1}}, B: []float64{0}, Act: nn.Identity},
		},
	}
	netJSON, err := vnn.MarshalNetwork(abs)
	if err != nil {
		t.Fatal(err)
	}
	fReq, _ := json.Marshal(vnnserver.FalsifyRequest{
		Network:  netJSON,
		Region:   vnn.RegionSpec{Box: [][2]float64{{0, 1}, {0, 1}}},
		Outputs:  []int{0},
		Restarts: 2, Steps: 25, Seed: 7,
	})
	resp, err := http.Post(ts.URL+"/v1/falsify", "application/json", bytes.NewReader(fReq))
	if err != nil {
		t.Fatal(err)
	}
	var fr vnnserver.FalsifyResponse
	if err := json.NewDecoder(resp.Body).Decode(&fr); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("falsify status %d", resp.StatusCode)
	}
	if fr.Value <= 0 || fr.Value > 1+1e-6 || fr.Evaluations == 0 || len(fr.Best) != 2 {
		t.Fatalf("falsify response %+v", fr)
	}

	// Falsify work caps and output validation: unbounded or mismatched
	// requests are rejected up front.
	for i, bad := range []string{
		fmt.Sprintf(`{"network":%s,"region":{"box":[[0,1],[0,1]]},"outputs":[0],"restarts":2000000000}`, netJSON),
		fmt.Sprintf(`{"network":%s,"region":{"box":[[0,1],[0,1]]},"outputs":[5]}`, netJSON),
	} {
		fresp, err := http.Post(ts.URL+"/v1/falsify", "application/json", strings.NewReader(bad))
		if err != nil {
			t.Fatal(err)
		}
		fresp.Body.Close()
		if fresp.StatusCode != http.StatusBadRequest {
			t.Fatalf("bad falsify %d: status %d, want 400", i, fresp.StatusCode)
		}
	}

	// Validation: every malformed request is a 400, never a hang or 500.
	badBodies := []string{
		`{`,
		`{"network":null}`,
		`{"network":{"name":"x","layers":[]},"region":{"name":"left_occupied"},"properties":[{"kind":"max","outputs":[0]}]}`,
		fmt.Sprintf(`{"network":%s,"region":{"name":"atlantis"},"properties":[{"kind":"max","outputs":[0]}]}`, netJSON),
		fmt.Sprintf(`{"network":%s,"region":{"box":[[0,1],[0,1]]},"properties":[]}`, netJSON),
		fmt.Sprintf(`{"network":%s,"region":{"box":[[0,1],[0,1]]},"properties":[{"kind":"sideways"}]}`, netJSON),
		fmt.Sprintf(`{"network":%s,"region":{"box":[[0,1],[0,1]]},"properties":[{"kind":"max","outputs":[0]}],"surprise":1}`, netJSON),
	}
	for i, body := range badBodies {
		if st := postVerify(t, ts.URL, []byte(body), nil); st != http.StatusBadRequest {
			t.Fatalf("bad body %d: status %d, want 400", i, st)
		}
	}
	// A property referencing a nonexistent output is rejected by the
	// engine and surfaces as 400 too.
	if st := postVerify(t, ts.URL, []byte(fmt.Sprintf(
		`{"network":%s,"region":{"box":[[0,1],[0,1]]},"properties":[{"kind":"max","outputs":[9]}]}`, netJSON)), nil); st != http.StatusBadRequest {
		t.Fatalf("out-of-range output: status %d, want 400", st)
	}

	getJSON(t, ts.URL+"/v1/verify/q99999999", http.StatusNotFound, nil)
}

// TestServerMetrics spot-checks the /metrics snapshot after traffic.
func TestServerMetrics(t *testing.T) {
	pred := core.NewPredictorNet(1, 10, 1, 4)
	_, ts := newTestServer(t, vnnserver.Config{CacheEntries: 2})
	body := verifyBody(t, pred.Net,
		[]vnn.PropertySpec{{Kind: "max", Outputs: pred.MuLatOutputs()}},
		vnnserver.QueryOptions{Workers: 1}, nil)

	var first, second vnnserver.VerifyResponse
	if st := postVerify(t, ts.URL, body, &first); st != http.StatusOK {
		t.Fatalf("first status %d", st)
	}
	if st := postVerify(t, ts.URL, body, &second); st != http.StatusOK {
		t.Fatalf("second status %d", st)
	}
	if first.CacheHit || !second.CacheHit {
		t.Fatalf("cache hits: first=%v second=%v", first.CacheHit, second.CacheHit)
	}
	if first.CompileMS <= 0 || second.CompileMS != first.CompileMS {
		t.Fatalf("compile cost not carried by the artifact: %v vs %v", first.CompileMS, second.CompileMS)
	}

	var m vnnserver.Metrics
	getJSON(t, ts.URL+"/metrics", http.StatusOK, &m)
	if m.Queries != 2 || m.Cache.Hits != 1 || m.Cache.Misses != 1 || m.Cache.Size != 1 {
		t.Fatalf("metrics %+v", m)
	}
	if m.Nodes <= 0 || m.EncodePasses <= 0 {
		t.Fatalf("effort counters empty: %+v", m)
	}
	if m.Draining {
		t.Fatal("fresh server reports draining")
	}
}
