// Fleet plane: the Server as a vnnfleet.Store. The replicable set is
// the union of the compile cache (vnn1- workload fingerprints) and the
// built monitors (vnnm1- content fingerprints); exports render the
// canonical wire documents, imports re-verify everything and insert
// through the same singleflight caches local requests use — so a
// concurrent local compile and a remote pull collapse to one entry,
// and a pulled compile immediately serves by-fingerprint /v1/infer.
package vnnserver

import (
	"context"
	"encoding/json"
	"fmt"
	"strings"

	"repro/pkg/vnn"
	"repro/pkg/vnnfleet"
)

// FleetFingerprints snapshots every replicable fingerprint: completed
// compiles and built monitors.
func (s *Server) FleetFingerprints() []string {
	keys := s.cache.Keys()
	return append(keys, s.monitors.contentKeys()...)
}

// ExportEntry renders one cached entry in its canonical wire form.
func (s *Server) ExportEntry(fingerprint string) (*vnnfleet.WorkloadExport, error) {
	if strings.HasPrefix(fingerprint, "vnnm1-") {
		mon, ok := s.monitors.lookupContent(fingerprint)
		if !ok {
			return nil, vnnfleet.ErrNotFound
		}
		doc, err := vnn.MarshalMonitor(mon)
		if err != nil {
			return nil, err
		}
		return &vnnfleet.WorkloadExport{
			Fingerprint: fingerprint,
			Kind:        vnnfleet.KindMonitor,
			Monitor:     doc,
		}, nil
	}
	cn, ok := s.cache.Peek(fingerprint)
	if !ok {
		return nil, vnnfleet.ErrNotFound
	}
	doc, err := vnn.MarshalCompiled(cn)
	if err != nil {
		return nil, err
	}
	return &vnnfleet.WorkloadExport{
		Fingerprint: fingerprint,
		Kind:        vnnfleet.KindCompile,
		Compiled:    doc,
	}, nil
}

// ImportEntry verifies one pulled entry and inserts it. Compiles are
// reconstructed without recompiling (vnn.UnmarshalCompiled recomputes
// the fingerprint from content and containment-checks the bounds);
// monitors re-derive their content hash and need their compile
// workload cached first (ErrDependency otherwise — a later round
// retries once the compile has replicated).
func (s *Server) ImportEntry(_ context.Context, exp *vnnfleet.WorkloadExport) error {
	if s.draining.Load() {
		return vnnfleet.ErrDraining
	}
	switch exp.Kind {
	case vnnfleet.KindCompile:
		cn, fp, err := vnn.UnmarshalCompiled(exp.Compiled)
		if err != nil {
			return fmt.Errorf("%w: %v", vnnfleet.ErrVerify, err)
		}
		if fp != exp.Fingerprint {
			return fmt.Errorf("%w: document content hashes to %s, export claims %s", vnnfleet.ErrVerify, fp, exp.Fingerprint)
		}
		s.cache.Import(fp, cn)
		// A replicated compile must serve by-fingerprint /v1/infer on this
		// node too, without a priming full-network request.
		s.workloads.put(fp, &inferWorkload{net: cn.Net(), region: cn.Region(), compileOpts: cn.Options()})
		return nil
	case vnnfleet.KindMonitor:
		var doc vnn.MonitorDocJSON
		if err := json.Unmarshal(exp.Monitor, &doc); err != nil {
			return fmt.Errorf("%w: %v", vnnfleet.ErrVerify, err)
		}
		cn, ok := s.cache.Peek(doc.NetworkFingerprint)
		if !ok {
			return fmt.Errorf("monitor %s needs workload %s: %w", exp.Fingerprint, doc.NetworkFingerprint, vnnfleet.ErrDependency)
		}
		// UnmarshalMonitor re-checks the workload binding against cn; the
		// content hash is then recomputed from the decoded patterns, so a
		// tampered monitor cannot enter the cache under a healthy key.
		mon, err := vnn.UnmarshalMonitor(exp.Monitor, cn)
		if err != nil {
			return fmt.Errorf("%w: %v", vnnfleet.ErrVerify, err)
		}
		if mon.Fingerprint() != exp.Fingerprint {
			return fmt.Errorf("%w: monitor content hashes to %s, export claims %s", vnnfleet.ErrVerify, mon.Fingerprint(), exp.Fingerprint)
		}
		s.monitors.importContent(mon)
		return nil
	default:
		return fmt.Errorf("%w: unknown workload kind %q", vnnfleet.ErrVerify, exp.Kind)
	}
}

// Fleet exposes the fleet peer (stats and tests). Nil only before New
// has run.
func (s *Server) Fleet() *vnnfleet.Peer { return s.fleet }
