package vnnserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/http/httputil"
	"net/url"
	"strings"
	"testing"

	"repro/pkg/vnn"
	"repro/pkg/vnnfleet"
	"repro/pkg/vnnserver"
)

// boxVerifyBody marshals a verify request over the infer tests' box
// region (the named case-study regions don't fit inferNet's dims).
func boxVerifyBody(t *testing.T, net *vnn.Network) []byte {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.VerifyRequest{
		Network:    netJSON,
		Region:     vnn.RegionSpec{Box: inferBox(net.InputDim())},
		Properties: []vnn.PropertySpec{{Kind: "max", Outputs: []int{0}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// byFingerprintBody builds an infer request that names cached artifacts
// instead of shipping the network.
func byFingerprintBody(t *testing.T, fp, monFP string, inputs [][]float64) []byte {
	t.Helper()
	body, err := json.Marshal(vnnserver.InferRequest{
		Fingerprint:        fp,
		MonitorFingerprint: monFP,
		Inputs:             inputs,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// TestFleetConvergence is the fleet plane's acceptance contract: three
// nodes with disjoint monitored workloads converge, via pairwise
// reconcile rounds, to one compile per distinct fingerprint fleet-wide
// (vnn.CompileCalls delta == distinct workloads), and every node then
// serves every workload by fingerprint with bit-identical outputs and
// verdicts — zero local compiles on the nodes that pulled.
func TestFleetConvergence(t *testing.T) {
	const nodes = 3
	rng := rand.New(rand.NewSource(77))
	probe := randRows(rng, 8, 6, 1)

	srvs := make([]*vnnserver.Server, nodes)
	urls := make([]string, nodes)
	for i := range srvs {
		srv, ts := newTestServer(t, vnnserver.Config{})
		srvs[i], urls[i] = srv, ts.URL
	}

	base := vnn.CompileCalls()

	// Phase 1: disjoint workloads — node k compiles (and monitors) only
	// its own network.
	type workload struct {
		fp, monFP string
		resp      vnnserver.InferResponse
	}
	wls := make([]workload, nodes)
	for k := range wls {
		net := inferNet(int64(100 + k))
		dataset := randRows(rng, 32, net.InputDim(), 1)
		body := inferBody(t, net, probe, &vnnserver.InferMonitorSpec{Data: dataset, Gamma: 1})
		if status := postInfer(t, urls[k], body, &wls[k].resp); status != http.StatusOK {
			t.Fatalf("node %d infer: HTTP %d", k, status)
		}
		wls[k].fp, wls[k].monFP = wls[k].resp.Fingerprint, wls[k].resp.MonitorFingerprint
		if wls[k].monFP == "" {
			t.Fatalf("node %d response has no monitor fingerprint", k)
		}
	}
	if d := vnn.CompileCalls() - base; d != nodes {
		t.Fatalf("phase 1 performed %d compiles, want %d", d, nodes)
	}

	// Phase 2: full-mesh reconcile. Compiles sort before monitors within
	// a round, so one sweep converges.
	ctx := context.Background()
	for i := range srvs {
		for j := range srvs {
			if i == j {
				continue
			}
			rs, err := srvs[i].Fleet().ReconcileOnce(ctx, urls[j])
			if err != nil {
				t.Fatalf("node %d pull from node %d: %v", i, j, err)
			}
			if rs.Rejected != 0 {
				t.Fatalf("node %d pull from node %d rejected %d entries", i, j, rs.Rejected)
			}
		}
	}

	// Convergence invariant: replication added zero compiles anywhere,
	// and each node still counts exactly its own compile miss.
	if d := vnn.CompileCalls() - base; d != nodes {
		t.Fatalf("fleet performed %d compiles for %d distinct workloads", d, nodes)
	}
	for i, srv := range srvs {
		st := srv.Cache().Stats()
		if st.Misses != 1 {
			t.Fatalf("node %d compile cache misses = %d, want 1 (only its own)", i, st.Misses)
		}
		if st.Size != nodes {
			t.Fatalf("node %d caches %d compiles, want %d", i, st.Size, nodes)
		}
		if st.Bytes <= 0 {
			t.Fatalf("node %d reports %d cache bytes", i, st.Bytes)
		}
		fs := srv.Fleet().Stats()
		if fs.EntriesPulled != int64(2*(nodes-1)) { // a compile and a monitor from each sibling
			t.Fatalf("node %d pulled %d entries, want %d", i, fs.EntriesPulled, 2*(nodes-1))
		}
	}

	// Phase 3: overlapping workloads — every node answers every workload
	// by fingerprint, bit-identical to the origin node's answer, without
	// touching a compile anywhere.
	for i := range srvs {
		for k, wl := range wls {
			var got vnnserver.InferResponse
			body := byFingerprintBody(t, wl.fp, wl.monFP, probe)
			if status := postInfer(t, urls[i], body, &got); status != http.StatusOK {
				t.Fatalf("node %d workload %d by-fingerprint infer: HTTP %d", i, k, status)
			}
			if !got.MonitorCacheHit {
				t.Fatalf("node %d workload %d did not hit the monitor cache", i, k)
			}
			want := wl.resp
			for r := range want.Outputs {
				for c := range want.Outputs[r] {
					if got.Outputs[r][c] != want.Outputs[r][c] {
						t.Fatalf("node %d workload %d output[%d][%d] = %v, origin %v",
							i, k, r, c, got.Outputs[r][c], want.Outputs[r][c])
					}
				}
			}
			if got.Flagged != want.Flagged || len(got.Verdicts) != len(want.Verdicts) {
				t.Fatalf("node %d workload %d verdicts drifted", i, k)
			}
			for v := range want.Verdicts {
				if got.Verdicts[v] != want.Verdicts[v] {
					t.Fatalf("node %d workload %d verdict %d = %+v, origin %+v",
						i, k, v, got.Verdicts[v], want.Verdicts[v])
				}
			}
		}
	}
	if d := vnn.CompileCalls() - base; d != nodes {
		t.Fatalf("serving replicated workloads performed %d compiles, want %d", d, nodes)
	}
}

// corruptingProxy forwards to target, tampering with workload-export
// responses: a network bias gains an element, so the re-fingerprint on
// import must fail.
func corruptingProxy(t *testing.T, target string) *httptest.Server {
	t.Helper()
	tu, err := url.Parse(target)
	if err != nil {
		t.Fatal(err)
	}
	rp := httputil.NewSingleHostReverseProxy(tu)
	rp.FlushInterval = -1 // pass the coded-symbol stream through live
	rp.ModifyResponse = func(resp *http.Response) error {
		if !strings.HasPrefix(resp.Request.URL.Path, "/v1/workloads/") {
			return nil
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return err
		}
		body = bytes.Replace(body, []byte(`"b":[`), []byte(`"b":[0.125,`), 1)
		resp.Body = io.NopCloser(bytes.NewReader(body))
		resp.ContentLength = int64(len(body))
		resp.Header.Set("Content-Length", "")
		return nil
	}
	proxy := httptest.NewServer(rp)
	t.Cleanup(proxy.Close)
	return proxy
}

// TestFleetRejectsCorruptedPull: a payload corrupted in transit fails
// the importer's fingerprint re-verification and never enters the
// follower's caches.
func TestFleetRejectsCorruptedPull(t *testing.T) {
	leader, lts := newTestServer(t, vnnserver.Config{})
	follower, _ := newTestServer(t, vnnserver.Config{})

	net := inferNet(200)
	var ir vnnserver.InferResponse
	if status := postInfer(t, lts.URL, inferBody(t, net, randRows(rand.New(rand.NewSource(1)), 4, net.InputDim(), 1), nil), &ir); status != http.StatusOK {
		t.Fatalf("prime leader: HTTP %d", status)
	}
	// Unmonitored infer does not compile; prime the compile cache through
	// a verify call so there is a replicable entry.
	if status := postVerify(t, lts.URL, boxVerifyBody(t, inferNet(200)), nil); status != http.StatusOK {
		t.Fatalf("prime leader compile: HTTP %d", status)
	}
	if len(leader.FleetFingerprints()) == 0 {
		t.Fatal("leader has nothing to replicate")
	}

	proxy := corruptingProxy(t, lts.URL)
	rs, err := follower.Fleet().ReconcileOnce(context.Background(), proxy.URL)
	if err != nil {
		t.Fatal(err)
	}
	if rs.Rejected == 0 || rs.Pulled != 0 {
		t.Fatalf("round stats %+v, want every pull rejected", rs)
	}
	if n := follower.Cache().Len(); n != 0 {
		t.Fatalf("follower cached %d corrupted entries", n)
	}
	if st := follower.Fleet().Stats(); st.PullRejected == 0 {
		t.Fatalf("rejections not counted: %+v", st)
	}
}

// TestFleetDrain: a draining node neither starts rounds, serves fleet
// requests, nor accepts imports — no new inserts after drain starts.
func TestFleetDrain(t *testing.T) {
	leader, lts := newTestServer(t, vnnserver.Config{})
	follower, fts := newTestServer(t, vnnserver.Config{})

	if status := postVerify(t, lts.URL, boxVerifyBody(t, inferNet(300)), nil); status != http.StatusOK {
		t.Fatalf("prime leader: HTTP %d", status)
	}

	follower.Drain(0)
	if _, err := follower.Fleet().ReconcileOnce(context.Background(), lts.URL); !errors.Is(err, vnnfleet.ErrDraining) {
		t.Fatalf("draining follower started a round: %v", err)
	}
	exp, err := leader.ExportEntry(leader.FleetFingerprints()[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := follower.ImportEntry(context.Background(), exp); !errors.Is(err, vnnfleet.ErrDraining) {
		t.Fatalf("draining follower accepted an import: %v", err)
	}
	if follower.Cache().Len() != 0 {
		t.Fatal("entry inserted after drain started")
	}

	// A draining node's fleet endpoints answer 503.
	leader.Drain(0)
	resp, err := http.Post(lts.URL+"/v1/fleet/reconcile", "application/octet-stream", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining reconcile endpoint: HTTP %d, want 503", resp.StatusCode)
	}
	resp, err = http.Get(fts.URL + "/v1/workloads/vnn1-anything")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining export endpoint: HTTP %d, want 503", resp.StatusCode)
	}
}

// TestFleetExportEndpoint pins the export wire contract: cached
// fingerprints serve their canonical document, unknown ones 404.
func TestFleetExportEndpoint(t *testing.T) {
	srv, ts := newTestServer(t, vnnserver.Config{})
	if status := postVerify(t, ts.URL, boxVerifyBody(t, inferNet(400)), nil); status != http.StatusOK {
		t.Fatalf("prime: HTTP %d", status)
	}
	fps := srv.FleetFingerprints()
	if len(fps) != 1 {
		t.Fatalf("fingerprints %v, want one compile", fps)
	}

	resp, err := http.Get(ts.URL + "/v1/workloads/" + fps[0])
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("export: HTTP %d", resp.StatusCode)
	}
	var exp vnnfleet.WorkloadExport
	if err := json.NewDecoder(resp.Body).Decode(&exp); err != nil {
		t.Fatal(err)
	}
	if exp.Fingerprint != fps[0] || exp.Kind != vnnfleet.KindCompile || len(exp.Compiled) == 0 {
		t.Fatalf("export %+v malformed", exp)
	}
	// The document round-trips through the public importer.
	if _, fp, err := vnn.UnmarshalCompiled(exp.Compiled); err != nil || fp != fps[0] {
		t.Fatalf("exported document does not import: fp=%s err=%v", fp, err)
	}

	resp, err = http.Get(ts.URL + "/v1/workloads/vnn1-unknown")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown export: HTTP %d, want 404", resp.StatusCode)
	}
}

// TestCacheImportAndBytes pins the non-counting import path and the
// byte accounting: imports are not misses, collide safely with cached
// keys, and bytes fall on eviction.
func TestCacheImportAndBytes(t *testing.T) {
	c := vnnserver.NewCache(1)
	if !c.Import("A", &vnn.CompiledNetwork{}) {
		t.Fatal("import into empty cache failed")
	}
	st := c.Stats()
	if st.Misses != 0 || st.Hits != 0 {
		t.Fatalf("import counted as traffic: %+v", st)
	}
	if st.Bytes <= 0 {
		t.Fatalf("imported entry accounts %d bytes", st.Bytes)
	}
	perEntry := st.Bytes

	if c.Import("A", &vnn.CompiledNetwork{}) {
		t.Fatal("duplicate import succeeded")
	}
	if !c.Import("B", &vnn.CompiledNetwork{}) { // evicts A (capacity 1)
		t.Fatal("second import failed")
	}
	st = c.Stats()
	if st.Size != 1 || st.Bytes != perEntry {
		t.Fatalf("eviction did not release bytes: %+v", st)
	}
	keys := c.Keys()
	if len(keys) != 1 || keys[0] != "B" {
		t.Fatalf("keys %v, want [B]", keys)
	}
	if _, ok := c.Peek("B"); !ok {
		t.Fatal("peek missed the imported entry")
	}
	if st := c.Stats(); st.Hits != 0 {
		t.Fatal("peek counted as a hit")
	}
}
