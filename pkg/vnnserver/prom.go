// Prometheus text exposition (format version 0.0.4) for /metrics. The
// JSON snapshot stays the default — existing dashboards and the CI
// smoke greps consume it — and a scraper opts into this rendering with
// `Accept: text/plain` (Prometheus always sends a text/plain clause) or
// `?format=prometheus`.
//
// Every family is rendered from ONE Metrics() snapshot, so the
// cross-counter consistency guarantee documented on Metrics holds for
// scrapes too. Histograms come from internal/obs: log2 buckets rendered
// cumulatively with `le` bounds scaled to the exposition unit, plus the
// standard _sum and _count series.

package vnnserver

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
	"repro/pkg/vnnregistry"
)

// wantsProm reports whether the request negotiated the Prometheus text
// format. The Accept match is deliberately narrow: curl's default
// `*/*` must keep getting JSON (the format CI and the examples parse).
func wantsProm(r *http.Request) bool {
	if r.URL.Query().Get("format") == "prometheus" {
		return true
	}
	accept := r.Header.Get("Accept")
	return strings.Contains(accept, "text/plain") || strings.Contains(accept, "openmetrics")
}

// promEscape escapes a label value per the exposition format.
func promEscape(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func promFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// promFamily writes one # HELP / # TYPE header.
func promFamily(w io.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// promHistogram renders one histogram snapshot as a labelled series set
// under an already-written family header: cumulative `_bucket` series,
// `_sum` and `_count`. labels is the shared label string ("" or
// `route="/v1/infer"`).
func promHistogram(w io.Writer, name, labels string, s obs.HistogramSnapshot) {
	bucketLabels := func(le string) string {
		if labels == "" {
			return fmt.Sprintf("{le=%q}", le)
		}
		return fmt.Sprintf("{%s,le=%q}", labels, le)
	}
	suffix := ""
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	var cum int64
	for k := 0; k <= obs.NumBuckets; k++ {
		cum += s.Buckets[k]
		le := "+Inf"
		if k < obs.NumBuckets {
			le = promFloat(float64(obs.BucketUpper(k)) * s.Scale)
		}
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(le), cum)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, suffix, promFloat(float64(s.Sum)*s.Scale))
	fmt.Fprintf(w, "%s_count%s %d\n", name, suffix, cum)
}

// promHelp maps histogram family names to their help strings. The wire
// form (obs.HistogramJSON) drops help text to keep federated documents
// small, so the renderer owns it — every histogram a Metrics document
// may carry must be listed here (unknown names render an empty help).
var promHelp = map[string]string{
	"vnnd_request_duration_seconds":        "Request latency by route.",
	"vnnd_queue_wait_seconds":              "Time admitted queries wait for a run slot.",
	"vnnd_run_seconds":                     "Time admitted queries spend running.",
	"vnnd_compile_seconds":                 "Compile cost on cache misses.",
	"vnnd_monitor_build_seconds":           "Monitor build cost on cache misses.",
	"vnnd_infer_batch_inputs":              "Inputs per /v1/infer batch.",
	"vnnd_infer_chunk_seconds":             "Per-lane kernel chunk time.",
	"vnnd_fleet_reconcile_seconds":         "Wall time per fleet reconcile round.",
	"vnnd_tenant_request_duration_seconds": "Per-tenant request latency by route.",
	"vnnd_tenant_queue_wait_seconds":       "Per-tenant run-slot queue wait.",
}

// writeProm renders the full Prometheus view from one metrics snapshot.
func (s *Server) writeProm(w http.ResponseWriter) {
	m := s.Metrics() // ONE snapshot; every family below reads from it
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	writePromFrom(w, m)
}

// writePromFrom renders one Metrics document — live or federated — as
// Prometheus text exposition. Everything below reads from m only (no
// live server state), which is what lets /v1/fleet/metrics reuse the
// renderer for the merged aggregate.
func writePromFrom(w io.Writer, m Metrics) {
	b := m.Build
	promFamily(w, "vnnd_build_info", "Build identity (value is always 1).", "gauge")
	fmt.Fprintf(w, "vnnd_build_info{version=%q,revision=%q,go=%q} 1\n",
		promEscape(b.Version), promEscape(b.Revision), promEscape(b.Go))

	gauge := func(name, help string, v float64) {
		promFamily(w, name, help, "gauge")
		fmt.Fprintf(w, "%s %s\n", name, promFloat(v))
	}
	counter := func(name, help string, v int64) {
		promFamily(w, name, help, "counter")
		fmt.Fprintf(w, "%s %d\n", name, v)
	}

	gauge("vnnd_uptime_seconds", "Seconds since the server started.", m.UptimeMS/1e3)
	draining := 0.0
	if m.Draining {
		draining = 1
	}
	gauge("vnnd_draining", "1 while the server drains.", draining)

	// Runtime gauges sampled from runtime/metrics at snapshot time.
	gauge("vnnd_goroutines", "Live goroutines.", float64(m.Runtime.Goroutines))
	gauge("vnnd_heap_inuse_bytes", "Heap bytes in use.", float64(m.Runtime.HeapInuseBytes))
	gauge("vnnd_gc_pause_p99_seconds", "99th-percentile GC stop-the-world pause.", m.Runtime.GCPauseP99MS/1e3)

	counter("vnnd_cache_hits_total", "Compile cache hits.", m.Cache.Hits)
	counter("vnnd_cache_misses_total", "Compile cache misses.", m.Cache.Misses)
	counter("vnnd_cache_evictions_total", "Compile cache evictions.", m.Cache.Evictions)
	gauge("vnnd_cache_entries", "Compile cache entries resident.", float64(m.Cache.Size))
	gauge("vnnd_cache_bytes", "Accounted bytes of cached compiles.", float64(m.Cache.Bytes))

	gauge("vnnd_scheduler_active", "Queries running now.", float64(m.Scheduler.Active))
	gauge("vnnd_scheduler_queued", "Queries waiting for a run slot.", float64(m.Scheduler.Queued))
	counter("vnnd_scheduler_rejected_total", "Admissions rejected with queue-full.", m.Scheduler.Rejected)
	counter("vnnd_scheduler_completed_total", "Queries completed.", m.Scheduler.Completed)

	counter("vnnd_queries_total", "Verify queries served.", m.Queries)
	counter("vnnd_analyze_requests_total", "Analyze batches served.", m.AnalyzeRequests)
	promFamily(w, "vnnd_analyses_total", "Analyses served by kind.", "counter")
	kinds := make([]string, 0, len(m.Analyses))
	for k := range m.Analyses {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		fmt.Fprintf(w, "vnnd_analyses_total{kind=%q} %d\n", promEscape(k), m.Analyses[k])
	}
	counter("vnnd_falsifications_total", "Falsification requests served.", m.Falsifications)

	counter("vnnd_infer_requests_total", "Infer batches served.", m.Infer.Requests)
	counter("vnnd_infer_inputs_total", "Infer inputs served.", m.Infer.Inputs)
	counter("vnnd_infer_flagged_total", "Inputs the runtime monitor flagged.", m.Infer.Flagged)
	gauge("vnnd_infer_monitors", "Cached monitor artifacts.", float64(m.Infer.Monitors))
	gauge("vnnd_infer_workloads", "Remembered by-fingerprint workloads.", float64(m.Infer.Workloads))
	promFamily(w, "vnnd_infer_shard_batches_total", "Batch chunks per serving lane.", "counter")
	for i, sh := range m.Infer.Shards {
		fmt.Fprintf(w, "vnnd_infer_shard_batches_total{lane=\"%d\"} %d\n", i, sh.Batches)
	}
	promFamily(w, "vnnd_infer_shard_inputs_total", "Inputs per serving lane.", "counter")
	for i, sh := range m.Infer.Shards {
		fmt.Fprintf(w, "vnnd_infer_shard_inputs_total{lane=\"%d\"} %d\n", i, sh.Inputs)
	}

	ready := 0.0
	if m.Registry.Ready {
		ready = 1
	}
	gauge("vnnd_registry_ready", "1 once registry recovery completed.", ready)
	gauge("vnnd_registry_models", "Registered models.", float64(m.Registry.Models))
	promFamily(w, "vnnd_model_version_info", "Model version lifecycle state (value is always 1).", "gauge")
	for _, v := range m.Registry.Versions {
		fmt.Fprintf(w, "vnnd_model_version_info{model=%q,version=\"%d\",state=%q,fingerprint=%q} 1\n",
			promEscape(v.Model), v.Version, promEscape(v.State), promEscape(v.Fingerprint))
	}
	modelCounter := func(name, help string, value func(vnnregistry.VersionMetric) int64) {
		promFamily(w, name, help, "counter")
		for _, v := range m.Registry.Versions {
			fmt.Fprintf(w, "%s{model=%q,version=\"%d\"} %d\n",
				name, promEscape(v.Model), v.Version, value(v))
		}
	}
	modelCounter("vnnd_model_requests_total", "Infer requests served per model version.",
		func(v vnnregistry.VersionMetric) int64 { return v.Requests })
	modelCounter("vnnd_model_inputs_total", "Infer inputs served per model version.",
		func(v vnnregistry.VersionMetric) int64 { return v.Inputs })
	modelCounter("vnnd_model_flagged_total", "Monitor-flagged inputs per model version.",
		func(v vnnregistry.VersionMetric) int64 { return v.Flagged })

	counter("vnnd_fleet_rounds_total", "Reconcile rounds initiated.", m.Fleet.Rounds)
	counter("vnnd_fleet_symbols_sent_total", "Coded symbols served to peers.", m.Fleet.SymbolsSent)
	counter("vnnd_fleet_symbols_received_total", "Coded symbols consumed from peers.", m.Fleet.SymbolsReceived)
	counter("vnnd_fleet_entries_pulled_total", "Cache entries pulled from peers.", m.Fleet.EntriesPulled)
	counter("vnnd_fleet_entries_pushed_total", "Cache entries exported to peers.", m.Fleet.EntriesPushed)
	counter("vnnd_fleet_pull_rejected_total", "Pulled entries failing verification.", m.Fleet.PullRejected)
	counter("vnnd_fleet_pull_skipped_total", "Pulls skipped by benign races.", m.Fleet.PullSkipped)

	counter("vnnd_nodes_total", "Branch-and-bound nodes explored.", m.Nodes)
	counter("vnnd_lp_pivots_total", "Simplex pivots performed.", m.LPPivots)
	counter("vnnd_encode_passes_total", "MILP encoding passes.", m.EncodePasses)
	counter("vnnd_tighten_passes_total", "LP bound-tightening passes.", m.TightenPasses)
	counter("vnnd_solves_total", "Branch-and-bound solves.", m.Solves)

	// Per-tenant accounting. Tenants are sorted so scrapes are stable;
	// the label space is hard-capped upstream (obs.TenantSet), so these
	// families cannot grow past TenantCap+1 values.
	tenants := make([]string, 0, len(m.Tenants))
	for t := range m.Tenants {
		tenants = append(tenants, t)
	}
	sort.Strings(tenants)
	promFamily(w, "vnnd_tenant_requests_total", "Requests served per tenant and route.", "counter")
	for _, t := range tenants {
		ts := m.Tenants[t]
		routes := make([]string, 0, len(ts.Routes))
		for rt := range ts.Routes {
			routes = append(routes, rt)
		}
		sort.Strings(routes)
		for _, rt := range routes {
			fmt.Fprintf(w, "vnnd_tenant_requests_total{tenant=%q,route=%q} %d\n",
				promEscape(t), promEscape(rt), ts.Routes[rt].Requests)
		}
	}
	promFamily(w, "vnnd_tenant_inputs_total", "Infer inputs served per tenant.", "counter")
	for _, t := range tenants {
		fmt.Fprintf(w, "vnnd_tenant_inputs_total{tenant=%q} %d\n", promEscape(t), m.Tenants[t].Inputs)
	}
	promFamily(w, "vnnd_tenant_flagged_total", "Monitor-flagged inputs per tenant.", "counter")
	for _, t := range tenants {
		fmt.Fprintf(w, "vnnd_tenant_flagged_total{tenant=%q} %d\n", promEscape(t), m.Tenants[t].Flagged)
	}
	promFamily(w, "vnnd_tenant_request_duration_seconds", promHelp["vnnd_tenant_request_duration_seconds"], "histogram")
	for _, t := range tenants {
		ts := m.Tenants[t]
		routes := make([]string, 0, len(ts.Routes))
		for rt := range ts.Routes {
			routes = append(routes, rt)
		}
		sort.Strings(routes)
		for _, rt := range routes {
			promHistogram(w, "vnnd_tenant_request_duration_seconds",
				fmt.Sprintf("tenant=%q,route=%q", promEscape(t), promEscape(rt)),
				ts.Routes[rt].Latency.Snapshot())
		}
	}
	promFamily(w, "vnnd_tenant_queue_wait_seconds", promHelp["vnnd_tenant_queue_wait_seconds"], "histogram")
	for _, t := range tenants {
		promHistogram(w, "vnnd_tenant_queue_wait_seconds",
			fmt.Sprintf("tenant=%q", promEscape(t)), m.Tenants[t].QueueWait.Snapshot())
	}

	// Histograms come off the snapshot's wire form — the same entries a
	// federated document carries — so live and merged views render
	// identically. Entries arrive grouped by family (histogramsJSON
	// emits the route-labelled request-duration family first).
	lastFamily := ""
	for _, hj := range m.Histograms {
		if hj.Name == "" {
			continue
		}
		if hj.Name != lastFamily {
			promFamily(w, hj.Name, promHelp[hj.Name], "histogram")
			lastFamily = hj.Name
		}
		labels := ""
		if hj.Route != "" {
			labels = fmt.Sprintf("route=%q", promEscape(hj.Route))
		}
		promHistogram(w, hj.Name, labels, hj.Snapshot())
	}
}
