package vnnserver_test

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"math/rand"
	"net/http"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/verify"
	"repro/pkg/vnn"
	"repro/pkg/vnnserver"
)

// analyzeBody marshals an analyze request.
func analyzeBody(t *testing.T, net *vnn.Network, region vnn.RegionSpec, analyses []vnn.AnalysisSpec, opts vnnserver.QueryOptions, wait *bool) []byte {
	t.Helper()
	netJSON, err := vnn.MarshalNetwork(net)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(vnnserver.AnalyzeRequest{
		Network:  netJSON,
		Region:   region,
		Analyses: analyses,
		Options:  opts,
		Wait:     wait,
	})
	if err != nil {
		t.Fatal(err)
	}
	return body
}

// postAnalyze POSTs an analyze request and decodes the response into out,
// returning the HTTP status.
func postAnalyze(t *testing.T, url string, body []byte, out any) int {
	t.Helper()
	resp, err := http.Post(url+"/v1/analyze", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s response: %v", resp.Status, err)
		}
	}
	return resp.StatusCode
}

// smallNet builds a tiny deterministic ReLU network with a matching box
// region for fast portfolio round trips.
func smallNet(t *testing.T) (*vnn.Network, vnn.RegionSpec) {
	t.Helper()
	rng := rand.New(rand.NewSource(17))
	net := vnn.NewNetwork(vnn.NetworkConfig{
		Name: "portfolio-sm", InputDim: 2, Hidden: []int{4}, OutputDim: 2,
		HiddenAct: vnn.ReLU, OutputAct: vnn.Identity,
	}, rng)
	return net, vnn.RegionSpec{Box: [][2]float64{{0, 1}, {0, 1}}}
}

// TestAnalyzeQuantSweep16ConcurrentOneCompilePerWidth is the analyze
// endpoint's acceptance contract: 16 concurrent identical quant-sweep
// requests over 3 bit-widths perform exactly one compile for the base
// model plus one per width — pinned by the process-wide EncodePasses
// counter — and every per-width verified bound is bit-identical to the
// CLI path (vnn.Quantize + vnn.Compile + vnn.Verify with the same pinned
// worker count).
func TestAnalyzeQuantSweep16ConcurrentOneCompilePerWidth(t *testing.T) {
	pred := core.NewPredictorNet(1, 8, 1, 3)
	outs := pred.MuLatOutputs()
	bits := []int{8, 6, 4}
	ctx := context.Background()
	cliOpts := vnn.Options{Workers: 1}

	// CLI reference: the float baseline and one quantized run per width.
	cn, err := vnn.Compile(ctx, pred.Net, vnn.LeftOccupiedRegion(), cliOpts)
	if err != nil {
		t.Fatal(err)
	}
	baseRef, err := vnn.VerifyOne(ctx, cn, vnn.MaxOverOutputs(outs...))
	if err != nil {
		t.Fatal(err)
	}
	widthRef := make([]*vnn.Result, len(bits))
	for i, b := range bits {
		qnet, _, err := vnn.Quantize(pred.Net, b)
		if err != nil {
			t.Fatal(err)
		}
		qcn, err := vnn.Compile(ctx, qnet, vnn.LeftOccupiedRegion(), cliOpts)
		if err != nil {
			t.Fatal(err)
		}
		if widthRef[i], err = vnn.VerifyOne(ctx, qcn, vnn.MaxOverOutputs(outs...)); err != nil {
			t.Fatal(err)
		}
	}

	srv, ts := newTestServer(t, vnnserver.Config{QueueDepth: 64})
	body := analyzeBody(t, pred.Net, vnn.RegionSpec{Name: "left_occupied"},
		[]vnn.AnalysisSpec{{
			Kind:       vnn.KindQuantSweep,
			Bits:       bits,
			Properties: []vnn.PropertySpec{{Kind: "max", Outputs: outs}},
		}},
		vnnserver.QueryOptions{Workers: 1}, nil)

	encBefore := verify.EncodePasses()
	const clients = 16
	responses := make([]vnnserver.AnalyzeResponse, clients)
	statuses := make([]int, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			statuses[slot] = postAnalyze(t, ts.URL, body, &responses[slot])
		}(i)
	}
	wg.Wait()

	// Exactly one compile for the base model plus one per width, across
	// the whole stampede.
	want := int64(1 + len(bits))
	if d := verify.EncodePasses() - encBefore; d != want {
		t.Fatalf("server performed %d encode passes for %d identical sweeps, want %d (base + one per width)",
			d, clients, want)
	}

	for i := range responses {
		if statuses[i] != http.StatusOK {
			t.Fatalf("request %d: status %d", i, statuses[i])
		}
		if len(responses[i].Analyses) != 1 {
			t.Fatalf("request %d: %d analyses", i, len(responses[i].Analyses))
		}
		qs := responses[i].Analyses[0].QuantSweep
		if qs == nil || len(qs.Points) != len(bits) {
			t.Fatalf("request %d: malformed sweep %+v", i, qs)
		}
		if got := *qs.Base[0].Value; math.Float64bits(got) != math.Float64bits(baseRef.Value) {
			t.Fatalf("request %d: base value %x != CLI %x", i,
				math.Float64bits(got), math.Float64bits(baseRef.Value))
		}
		for j, pt := range qs.Points {
			if pt.Bits != bits[j] {
				t.Fatalf("request %d point %d: bits %d", i, j, pt.Bits)
			}
			if got := *pt.Results[0].Value; math.Float64bits(got) != math.Float64bits(widthRef[j].Value) {
				t.Fatalf("request %d int%d: value %x != CLI %x", i, pt.Bits,
					math.Float64bits(got), math.Float64bits(widthRef[j].Value))
			}
			if got := *pt.Results[0].UpperBound; math.Float64bits(got) != math.Float64bits(widthRef[j].UpperBound) {
				t.Fatalf("request %d int%d: bound %x != CLI %x", i, pt.Bits,
					math.Float64bits(got), math.Float64bits(widthRef[j].UpperBound))
			}
		}
	}

	// The cache now holds every distinct artifact: base + one per width.
	if got := srv.Cache().Len(); got != 1+len(bits) {
		t.Fatalf("cache holds %d artifacts, want %d", got, 1+len(bits))
	}
	// Per-kind accounting: every completed batch counted its sweep.
	m := srv.Metrics()
	if m.Analyses[vnn.KindQuantSweep] != clients || m.AnalyzeRequests != clients {
		t.Fatalf("metrics: %+v", m.Analyses)
	}
}

// TestAnalyzePortfolioRoundTrip drives a whole portfolio batch — data
// validation, coverage, traceability, verification, falsification —
// through HTTP and checks each finding plus the per-kind counters.
func TestAnalyzePortfolioRoundTrip(t *testing.T) {
	net, region := smallNet(t)
	// The last sample violates the range rule — the validation finding
	// must flag exactly it.
	data := [][]float64{{0.1, 0.9}, {0.8, 0.2}, {0.5, 0.5}, {1.5, 0.9}}
	labels := [][]float64{{0}, {0}, {0}, {2}}

	srv, ts := newTestServer(t, vnnserver.Config{})
	body := analyzeBody(t, net, region, []vnn.AnalysisSpec{
		{Kind: vnn.KindDataValidation, Data: data, Labels: labels, Rules: []vnn.DataRuleSpec{
			{Kind: "finite"},
			{Kind: "range", Lo: f64(0), Hi: f64(1)},
			{Kind: "dimensions", XDim: 2, YDim: 1},
		}},
		{Kind: vnn.KindCoverage, Data: data, MaxTests: 400, Seed: 5},
		{Kind: vnn.KindTraceability, Data: data, TopK: 2},
		{Kind: vnn.KindVerify, Properties: []vnn.PropertySpec{
			{Kind: "max", Outputs: []int{0}},
			{Kind: "at_most", Output: intp(0), Threshold: f64(1000)},
		}},
		{Kind: vnn.KindFalsify, Outputs: []int{0}, Restarts: 2, Steps: 10},
	}, vnnserver.QueryOptions{Workers: 1}, nil)

	var resp vnnserver.AnalyzeResponse
	if status := postAnalyze(t, ts.URL, body, &resp); status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	if len(resp.Analyses) != 5 {
		t.Fatalf("%d analyses returned", len(resp.Analyses))
	}
	dv := resp.Analyses[0].DataValidation
	if dv == nil || dv.Samples != 4 || dv.Valid || dv.Violations != 1 {
		t.Fatalf("data validation: %+v", dv)
	}
	if dv.PerRule["input-range"] != 1 || len(dv.Details) != 1 || dv.Details[0].SampleIndex != 3 {
		t.Fatalf("violation detail: %+v", dv)
	}
	cov := resp.Analyses[1].Coverage
	if cov == nil || cov.Tests < len(data) || cov.BranchCombinations != "16" {
		t.Fatalf("coverage: %+v", cov)
	}
	tr := resp.Analyses[2].Traceability
	if tr == nil || tr.Neurons != 4 || len(tr.NeuronDetails) != 4 {
		t.Fatalf("traceability: %+v", tr)
	}
	if tr.AlwaysActive+tr.AlwaysInactive+tr.Conditional != 4 {
		t.Fatalf("conditions don't cover all neurons: %+v", tr)
	}
	ver := resp.Analyses[3]
	if len(ver.Results) != 2 || ver.Results[0].Outcome != "proved" {
		t.Fatalf("verification: %+v", ver.Results)
	}
	fa := resp.Analyses[4].Falsification
	if fa == nil || len(fa.Best) != 2 {
		t.Fatalf("falsification: %+v", fa)
	}
	// The attack's reach can never exceed the verified maximum.
	if fa.Value > *ver.Results[0].Value+1e-9 {
		t.Fatalf("attack %g beats verified %g", fa.Value, *ver.Results[0].Value)
	}
	// Flattened verification results for legacy report consumers.
	if len(resp.Results) != 2 || resp.Worst != "proved" {
		t.Fatalf("flattened report: worst %q, %d results", resp.Worst, len(resp.Results))
	}

	m := srv.Metrics()
	for _, kind := range []string{vnn.KindDataValidation, vnn.KindCoverage, vnn.KindTraceability, vnn.KindVerify, vnn.KindFalsify} {
		if m.Analyses[kind] != 1 {
			t.Fatalf("metrics missing kind %q: %+v", kind, m.Analyses)
		}
	}
}

func TestAnalyzeValidationErrors(t *testing.T) {
	net, region := smallNet(t)
	_, ts := newTestServer(t, vnnserver.Config{})
	cases := [][]vnn.AnalysisSpec{
		nil, // no analyses
		{{Kind: "nope"}},
		{{Kind: vnn.KindVerify}},   // no properties
		{{Kind: vnn.KindCoverage}}, // no data/budget
		{{Kind: vnn.KindTraceability, Data: [][]float64{{1}}}}, // wrong dim
		{{Kind: vnn.KindFalsify, Outputs: []int{5}}},           // bad output
		{{Kind: vnn.KindQuantSweep, Bits: []int{64}, Properties: []vnn.PropertySpec{{Kind: "max", Outputs: []int{0}}}}},
		{{Kind: vnn.KindVerify, Properties: []vnn.PropertySpec{{Kind: "max", Outputs: []int{9}}}}},
		// Per-request work caps: the analyze endpoint must refuse the
		// same open-ended compute /v1/falsify refuses.
		{{Kind: vnn.KindFalsify, Outputs: []int{0}, Restarts: 100000000, Steps: 10}},
		{{Kind: vnn.KindCoverage, MaxTests: 1 << 24}},
		{{Kind: vnn.KindQuantSweep, Bits: bitsLadder(40), Properties: []vnn.PropertySpec{{Kind: "max", Outputs: []int{0}}}}},
	}
	for i, analyses := range cases {
		body := analyzeBody(t, net, region, analyses, vnnserver.QueryOptions{}, nil)
		var eresp map[string]any
		if status := postAnalyze(t, ts.URL, body, &eresp); status != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400 (%v)", i, status, eresp)
		}
	}
}

// TestAnalyzeAsyncResultRetrieval submits an async portfolio batch and
// fetches the finished report through GET /v1/analyze/{id}.
func TestAnalyzeAsyncResultRetrieval(t *testing.T) {
	net, region := smallNet(t)
	_, ts := newTestServer(t, vnnserver.Config{})
	wait := false
	body := analyzeBody(t, net, region, []vnn.AnalysisSpec{
		{Kind: vnn.KindCoverage, MaxTests: 200, Seed: 2},
		{Kind: vnn.KindVerify, Properties: []vnn.PropertySpec{{Kind: "max", Outputs: []int{0}}}},
	}, vnnserver.QueryOptions{Workers: 1}, &wait)

	var acc vnnserver.AcceptedResponse
	if status := postAnalyze(t, ts.URL, body, &acc); status != http.StatusAccepted {
		t.Fatalf("status %d, want 202", status)
	}
	if acc.ID == "" {
		t.Fatal("no job id")
	}
	var resp vnnserver.AnalyzeResponse
	for {
		r, err := http.Get(ts.URL + "/v1/analyze/" + acc.ID)
		if err != nil {
			t.Fatal(err)
		}
		done := r.StatusCode == http.StatusOK
		if !done && r.StatusCode != http.StatusAccepted {
			t.Fatalf("status %d", r.StatusCode)
		}
		if done {
			if err := json.NewDecoder(r.Body).Decode(&resp); err != nil {
				t.Fatal(err)
			}
			r.Body.Close()
			break
		}
		r.Body.Close()
	}
	if len(resp.Analyses) != 2 || resp.Analyses[0].Coverage == nil {
		t.Fatalf("async report malformed: %+v", resp.Analyses)
	}
}

func f64(v float64) *float64 { return &v }
func intp(v int) *int        { return &v }

// bitsLadder builds an n-long list of valid bit-widths (for cap tests).
func bitsLadder(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = 2 + i%15
	}
	return out
}
